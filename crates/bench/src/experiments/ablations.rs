//! The three ablation studies (checked-bit replacement, trace-length
//! limit, redundant-fetch fallback), one shard per (study, benchmark)
//! unit.

use super::{
    data_payload, emit_payload, get_arr, get_f64, get_str, get_u64, obj, Csv, Emitted, Scale,
};
use itr_core::{
    fan_out_records, Associativity, CoverageModel, ItrCacheConfig, TraceRecord, TraceReplay,
};
use itr_harness::{JobSpec, Registry, ShardSpec};
use itr_power::{energy_per_access_nj, ITR_CACHE_1024X2, POWER4_ICACHE};
use itr_sim::record_tap;
use itr_stats::json::Value;
use itr_workloads::{generate_mimic_sized, profiles, SpecProfile};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::Path;

/// The benchmarks the trace-length ablation runs on.
pub const TRACE_LEN_BENCHES: [&str; 3] = ["parser", "twolf", "vortex"];

/// One ablation measurement.
#[derive(Debug, Clone)]
pub enum AblationUnit {
    /// Checked-bit-aware replacement vs plain LRU (2-way, 256
    /// signatures).
    CheckedBit {
        /// Benchmark name.
        bench: String,
        /// Detection loss, plain LRU (%).
        det_lru: f64,
        /// Detection loss, checked-bit-aware (%).
        det_ckd: f64,
        /// Recovery loss, plain LRU (%).
        rec_lru: f64,
        /// Recovery loss, checked-bit-aware (%).
        rec_ckd: f64,
    },
    /// Trace length limit vs static population and coverage.
    TraceLen {
        /// Benchmark name.
        bench: String,
        /// `(limit, static traces, detection loss %, recovery loss %)`.
        points: Vec<(u64, u64, f64, f64)>,
    },
    /// Redundant fetch on ITR miss vs full duplication.
    RedundantFetch {
        /// Benchmark name.
        bench: String,
        /// Recovery loss (%).
        rec: f64,
        /// ITR-gated refetch energy (mJ).
        gated_mj: f64,
        /// Full-duplication refetch energy (mJ).
        full_dup_mj: f64,
    },
}

impl AblationUnit {
    /// Journal-crossing encoding.
    pub fn to_value(&self) -> Value {
        match self {
            AblationUnit::CheckedBit { bench, det_lru, det_ckd, rec_lru, rec_ckd } => obj(vec![
                ("kind", Value::Str("checked_bit".into())),
                ("bench", Value::Str(bench.clone())),
                ("det_lru", Value::Float(*det_lru)),
                ("det_ckd", Value::Float(*det_ckd)),
                ("rec_lru", Value::Float(*rec_lru)),
                ("rec_ckd", Value::Float(*rec_ckd)),
            ]),
            AblationUnit::TraceLen { bench, points } => obj(vec![
                ("kind", Value::Str("trace_len".into())),
                ("bench", Value::Str(bench.clone())),
                (
                    "points",
                    Value::Array(
                        points
                            .iter()
                            .map(|&(limit, statics, det, rec)| {
                                obj(vec![
                                    ("limit", Value::UInt(limit)),
                                    ("statics", Value::UInt(statics)),
                                    ("det", Value::Float(det)),
                                    ("rec", Value::Float(rec)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            AblationUnit::RedundantFetch { bench, rec, gated_mj, full_dup_mj } => obj(vec![
                ("kind", Value::Str("redundant_fetch".into())),
                ("bench", Value::Str(bench.clone())),
                ("rec", Value::Float(*rec)),
                ("gated_mj", Value::Float(*gated_mj)),
                ("full_dup_mj", Value::Float(*full_dup_mj)),
            ]),
        }
    }

    /// Decoding.
    pub fn from_value(v: &Value) -> AblationUnit {
        match get_str(v, "kind") {
            "checked_bit" => AblationUnit::CheckedBit {
                bench: get_str(v, "bench").to_string(),
                det_lru: get_f64(v, "det_lru"),
                det_ckd: get_f64(v, "det_ckd"),
                rec_lru: get_f64(v, "rec_lru"),
                rec_ckd: get_f64(v, "rec_ckd"),
            },
            "trace_len" => AblationUnit::TraceLen {
                bench: get_str(v, "bench").to_string(),
                points: get_arr(v, "points")
                    .iter()
                    .map(|p| {
                        (
                            get_u64(p, "limit"),
                            get_u64(p, "statics"),
                            get_f64(p, "det"),
                            get_f64(p, "rec"),
                        )
                    })
                    .collect(),
            },
            "redundant_fetch" => AblationUnit::RedundantFetch {
                bench: get_str(v, "bench").to_string(),
                rec: get_f64(v, "rec"),
                gated_mj: get_f64(v, "gated_mj"),
                full_dup_mj: get_f64(v, "full_dup_mj"),
            },
            other => panic!("unknown ablation kind `{other}`"),
        }
    }
}

/// Ablation 1 for one benchmark.
pub fn checked_bit_unit(
    profile: SpecProfile,
    seed: u64,
    instrs: u64,
    from_programs: bool,
) -> AblationUnit {
    let stream: Vec<TraceRecord> =
        crate::stream_with(profile, seed, instrs, from_programs).collect();
    let mut models = [
        CoverageModel::new(ItrCacheConfig::new(256, Associativity::Ways(2))),
        CoverageModel::new(
            ItrCacheConfig::new(256, Associativity::Ways(2)).with_checked_bit_replacement(true),
        ),
    ];
    fan_out_records(&stream, &mut models);
    let (p, c) = (models[0].report(), models[1].report());
    AblationUnit::CheckedBit {
        bench: profile.name.to_string(),
        det_lru: p.detection_loss_pct(),
        det_ckd: c.detection_loss_pct(),
        rec_lru: p.recovery_loss_pct(),
        rec_ckd: c.recovery_loss_pct(),
    }
}

/// Ablation 2 for one benchmark.
///
/// The program is simulated **once**: the recorded `itr-tap/v1`
/// dispatch stream re-segments under each trace-length limit through
/// [`TraceReplay`], replacing the per-limit functional re-simulation
/// (the trace stream under any limit is a pure function of the dispatch
/// sequence, which the limit does not affect).
pub fn trace_len_unit(profile: SpecProfile, seed: u64, program_instrs: u64) -> AblationUnit {
    let program = generate_mimic_sized(profile, seed, program_instrs);
    let tap = record_tap(&program, profile.name, program_instrs);
    let mut points = Vec::new();
    for limit in [8u32, 16, 32] {
        let mut statics: BTreeSet<u64> = BTreeSet::new();
        let mut model = CoverageModel::new(ItrCacheConfig::new(1024, Associativity::Ways(2)));
        let mut replay = TraceReplay::new(limit);
        for (pc, sig, extra) in tap.dispatches() {
            if let Some(t) = replay.push(pc, sig, extra) {
                statics.insert(t.start_pc);
                model.observe(&t);
            }
        }
        let r = model.report();
        points.push((
            limit as u64,
            statics.len() as u64,
            r.detection_loss_pct(),
            r.recovery_loss_pct(),
        ));
    }
    AblationUnit::TraceLen { bench: profile.name.to_string(), points }
}

/// Ablation 3 for one benchmark.
pub fn redundant_fetch_unit(
    profile: SpecProfile,
    seed: u64,
    instrs: u64,
    from_programs: bool,
) -> AblationUnit {
    let e_ic = energy_per_access_nj(&POWER4_ICACHE);
    let e_itr = energy_per_access_nj(&ITR_CACHE_1024X2);
    let mut model = CoverageModel::new(ItrCacheConfig::new(1024, Associativity::Ways(2)));
    let mut miss_fetch_groups = 0u64;
    let mut all_fetch_groups = 0u64;
    let mut itr_accesses = 0u64;
    for t in crate::stream_with(profile, seed, instrs, from_programs) {
        all_fetch_groups += (t.len as u64).div_ceil(4);
        // One extra ITR-cache check per refetched trace, plus the
        // refetch itself (one fetch group per 4 instructions).
        if model.cache().peek(t.start_pc).is_none() {
            miss_fetch_groups += (t.len as u64).div_ceil(4);
            itr_accesses += 1;
        }
        model.observe(&t);
    }
    let r = model.report();
    let gated_mj = (miss_fetch_groups as f64 * e_ic + itr_accesses as f64 * e_itr) * 1e-6;
    let full_dup_mj = all_fetch_groups as f64 * e_ic * 1e-6;
    AblationUnit::RedundantFetch {
        bench: profile.name.to_string(),
        rec: r.recovery_loss_pct(),
        gated_mj,
        full_dup_mj,
    }
}

/// Renders the three studies exactly as the `ablations` binary prints
/// them. `units` must arrive in shard order: all checked-bit units, then
/// trace-length, then redundant-fetch.
pub fn render_ablations(units: &[AblationUnit]) -> Emitted {
    let mut text = String::new();
    let mut rows = Vec::new();

    let _ =
        writeln!(text, "=== Ablation 1: checked-bit-aware replacement (2-way, 256 signatures) ===");
    let _ = writeln!(
        text,
        "{:<10} {:>10} {:>10} {:>10} {:>10}",
        "bench", "det(LRU)", "det(ckd)", "rec(LRU)", "rec(ckd)"
    );
    for u in units {
        if let AblationUnit::CheckedBit { bench, det_lru, det_ckd, rec_lru, rec_ckd } = u {
            let _ = writeln!(
                text,
                "{bench:<10} {det_lru:>9.2}% {det_ckd:>9.2}% {rec_lru:>9.2}% {rec_ckd:>9.2}%"
            );
            rows.push(format!(
                "checked_bit,{bench},{det_lru:.4},{det_ckd:.4},{rec_lru:.4},{rec_ckd:.4}"
            ));
        }
    }

    let _ =
        writeln!(text, "\n=== Ablation 2: trace length limit (generated programs, 1024×2-way) ===");
    let _ = writeln!(
        text,
        "{:<10} {:>6} {:>14} {:>10} {:>10}",
        "bench", "limit", "static traces", "det loss", "rec loss"
    );
    for u in units {
        if let AblationUnit::TraceLen { bench, points } = u {
            for &(limit, statics, det, rec) in points {
                let _ =
                    writeln!(text, "{bench:<10} {limit:>6} {statics:>14} {det:>9.2}% {rec:>9.2}%");
                rows.push(format!("trace_len,{bench},{limit},{statics},{det:.4},{rec:.4}"));
            }
        }
    }

    let _ = writeln!(
        text,
        "\n=== Ablation 3: redundant fetch on ITR miss vs full duplication (§3) ==="
    );
    let _ = writeln!(
        text,
        "{:<10} {:>10} {:>14} {:>14} {:>14}",
        "bench", "rec loss", "gated (mJ)", "full dup (mJ)", "saving"
    );
    for u in units {
        if let AblationUnit::RedundantFetch { bench, rec, gated_mj, full_dup_mj } = u {
            let _ = writeln!(
                text,
                "{bench:<10} {rec:>9.2}% {gated_mj:>14.4} {full_dup_mj:>14.4} {:>13.1}x",
                full_dup_mj / gated_mj.max(1e-12)
            );
            rows.push(format!("redundant_fetch,{bench},{rec:.4},{gated_mj:.5},{full_dup_mj:.5}"));
        }
    }
    let _ = writeln!(text, "(either fallback closes recovery loss to 0.00% for every benchmark)");
    Emitted {
        txt_name: "ablations.txt",
        text,
        csv: Some(Csv {
            name: "ablations.csv",
            header: "ablation,bench,a,b,c,d".to_string(),
            rows,
        }),
    }
}

/// Registers the measurement job and its emit job.
pub fn register(reg: &mut Registry, scale: &Scale, out: &Path) {
    let s = scale.clone();
    reg.add(JobSpec::new("ablations-units", &[], move |_| {
        let mut shards = Vec::new();
        let mut index = 0u32;
        for profile in profiles::coverage_figure_set() {
            let s = s.clone();
            shards.push(ShardSpec::new(index, (index as u64, index as u64 + 1), move |_| {
                data_payload(
                    checked_bit_unit(profile, s.seed, s.instrs, s.from_programs).to_value(),
                )
            }));
            index += 1;
        }
        for name in TRACE_LEN_BENCHES {
            let s = s.clone();
            shards.push(ShardSpec::new(index, (index as u64, index as u64 + 1), move |_| {
                let profile = profiles::by_name(name).expect("known benchmark");
                data_payload(trace_len_unit(profile, s.seed, s.program_instrs).to_value())
            }));
            index += 1;
        }
        for profile in profiles::coverage_figure_set() {
            let s = s.clone();
            shards.push(ShardSpec::new(index, (index as u64, index as u64 + 1), move |_| {
                data_payload(
                    redundant_fetch_unit(profile, s.seed, s.instrs, s.from_programs).to_value(),
                )
            }));
            index += 1;
        }
        shards
    }));
    let dir = out.to_path_buf();
    reg.add(JobSpec::single("ablations", &["ablations-units"], move |_, board| {
        let units: Vec<AblationUnit> =
            board.expect("ablations-units").data().map(AblationUnit::from_value).collect();
        emit_payload(&dir, &render_ablations(&units))
    }));
}
