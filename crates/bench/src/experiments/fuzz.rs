//! The `itr-fuzz` differential campaign as a harness job family: the
//! iteration budget splits across fixed seed-derived shards, each shard
//! runs an independent deterministic fuzzing campaign (same engine the
//! `itr-fuzz` binary drives), and the emit job renders a per-shard
//! summary plus any findings into `fuzz.txt` / `fuzz.csv`.
//!
//! A second family, `fuzz-service`, demonstrates the persistent-service
//! machinery under the harness's deterministic generation barrier: each
//! worker shard fuzzes generation 0 and exports its novelty as an
//! `itr-fuzz-sync/v1` document through the job blackboard; the report
//! job then replays every worker's generation 0 (bit-identical — the
//! engine is a pure function of its seed), imports the peers' exports,
//! runs generation 1 on the merged frontier, and renders
//! `fuzz_service.txt` / `fuzz_service.csv`. Unlike the wall-clock-driven
//! `itr-fuzz serve` sync, the barrier timing is part of the job graph,
//! so the artifact is byte-identical at any `--jobs` level.

use super::{data_payload, emit_payload, get_str, get_u64, obj, Csv, Emitted, Scale};
use itr_fuzz::{run, sync, FuzzConfig, Fuzzer};
use itr_harness::{JobSpec, Registry, ShardSpec};
use itr_stats::json::Value;
use std::fmt::Write as _;
use std::path::Path;

/// Fixed shard count — part of the deterministic decomposition, so a
/// journaled run resumes shard-for-shard.
pub const FUZZ_SHARDS: u32 = 4;

/// Per-shard engine configuration: the scale's iteration budget divides
/// evenly (remainder to the low shards) and each shard derives its own
/// seed, so shards explore disjoint random streams.
pub fn shard_cfg(scale: &Scale, shard: u32) -> FuzzConfig {
    let per = scale.fuzz_iters / FUZZ_SHARDS as u64;
    let extra = u64::from((shard as u64) < scale.fuzz_iters % FUZZ_SHARDS as u64);
    FuzzConfig {
        seed: scale.seed.wrapping_add(0x1000 * (shard as u64 + 1)),
        iters: per + extra,
        ..FuzzConfig::default()
    }
}

/// One shard's journal-crossing payload: the engine's `itr-fuzz-stats/v1`
/// export plus the shard index and a findings digest (oracle + detail per
/// recorded finding).
fn shard_value(shard: u32, cfg: &FuzzConfig, outcome: &itr_fuzz::FuzzOutcome) -> Value {
    let findings = outcome
        .findings
        .iter()
        .map(|f| {
            obj(vec![
                ("oracle", Value::Str(f.kind.label().to_string())),
                ("detail", Value::Str(f.detail.clone())),
                ("fingerprint", Value::Str(format!("{:#018x}", f.case.fingerprint()))),
            ])
        })
        .collect();
    obj(vec![
        ("shard", Value::UInt(shard as u64)),
        ("stats", outcome.stats_value(cfg)),
        ("findings", Value::Array(findings)),
    ])
}

/// Renders the campaign summary. Shards arrive in index order (the
/// harness preserves shard order per job), so the artifact is stable.
pub fn render_fuzz(shards: &[Value], total_iters: u64) -> Emitted {
    let mut text = String::new();
    let _ = writeln!(text, "=== itr-fuzz differential campaign ({total_iters} iterations) ===");
    let _ = writeln!(
        text,
        "{:<6} {:>18} {:>8} {:>6} {:>9} {:>7} {:>19} {:>13} {:>9}",
        "shard", "seed", "iters", "seeds", "coverage", "corpus", "digest", "golden", "findings"
    );
    let mut rows = Vec::new();
    let mut total_findings = 0u64;
    let mut details: Vec<(u64, String, String)> = Vec::new();
    for v in shards {
        let shard = get_u64(v, "shard");
        let stats = v.get("stats").expect("shard payload carries stats");
        let seed = get_u64(stats, "seed");
        let iters = get_u64(stats, "iterations");
        let seeds = get_u64(stats, "seeds");
        let coverage = get_u64(stats, "coverage");
        let corpus = get_u64(stats, "corpus_len");
        let digest = get_str(stats, "corpus_digest");
        let golden = get_u64(stats, "golden_instrs");
        let findings = get_u64(stats, "findings_total");
        total_findings += findings;
        let _ = writeln!(
            text,
            "{shard:<6} {seed:#18x} {iters:>8} {seeds:>6} {coverage:>9} {corpus:>7} \
             {digest:>19} {golden:>13} {findings:>9}"
        );
        rows.push(format!(
            "{shard},{seed:#x},{iters},{seeds},{coverage},{corpus},{digest},{golden},{findings}"
        ));
        if let Some(list) = v.get("findings").and_then(Value::as_array) {
            for f in list {
                details.push((
                    shard,
                    get_str(f, "oracle").to_string(),
                    get_str(f, "detail").to_string(),
                ));
            }
        }
    }
    if details.is_empty() && total_findings == 0 {
        let _ = writeln!(
            text,
            "\nAll three oracles (commit equivalence, signature determinism, fault\n\
             consistency) held on every input; the corpus digests above make the\n\
             run reproducible bit-for-bit."
        );
    } else {
        let _ = writeln!(text, "\n{total_findings} oracle violation(s):");
        for (shard, oracle, detail) in &details {
            let _ = writeln!(text, "  shard {shard} [{oracle}] {detail}");
        }
        let _ = writeln!(
            text,
            "Shrunken reproducers belong in tests/fuzz_regressions/ (see DESIGN.md §9)."
        );
    }
    Emitted {
        txt_name: "fuzz.txt",
        text,
        csv: Some(Csv {
            name: "fuzz.csv",
            header: "shard,seed,iterations,seeds,coverage,corpus_len,corpus_digest,\
                     golden_instrs,findings"
                .to_string(),
            rows,
        }),
    }
}

/// Worker count of the `fuzz-service` generation barrier. Two is enough
/// to exercise the export/import path in both directions while keeping
/// the report job's deterministic generation-0 replay affordable.
pub const SERVICE_WORKERS: u32 = 2;

/// Iterations per generation per service worker.
pub fn service_gen_iters(scale: &Scale) -> u64 {
    (scale.fuzz_iters / (u64::from(SERVICE_WORKERS) * 4)).max(8)
}

/// One service worker's engine configuration: quick oracle budgets (the
/// family measures sync mechanics, not coverage depth) and a worker-
/// derived seed disjoint from the campaign shards' `0x1000` stride.
pub fn service_cfg(scale: &Scale, worker: u32) -> FuzzConfig {
    FuzzConfig {
        corpus_cap: 128,
        ..FuzzConfig::quick(
            scale.seed.wrapping_add(0x2000 * (u64::from(worker) + 1)),
            service_gen_iters(scale),
        )
    }
}

/// One worker's line in the service report.
pub struct ServiceRow {
    pub worker: u32,
    pub seed: u64,
    pub gen_iters: u64,
    pub gen0_coverage: u64,
    pub exported: u64,
    pub scanned: u64,
    pub admitted: u64,
    pub gen1_coverage: u64,
    pub corpus_len: u64,
    pub digest: String,
    pub replay_ok: bool,
}

/// Renders the generation-barrier service report.
pub fn render_fuzz_service(rows: &[ServiceRow]) -> Emitted {
    let mut text = String::new();
    let _ = writeln!(
        text,
        "=== itr-fuzz persistent service ({SERVICE_WORKERS} workers, generation barrier) ==="
    );
    let _ = writeln!(
        text,
        "{:<6} {:>18} {:>9} {:>8} {:>8} {:>7} {:>8} {:>8} {:>6} {:>19}",
        "worker",
        "seed",
        "gen_iters",
        "gen0_cov",
        "exported",
        "scanned",
        "admitted",
        "gen1_cov",
        "corpus",
        "digest"
    );
    let mut csv = Vec::new();
    let mut replays_ok = true;
    for r in rows {
        replays_ok &= r.replay_ok;
        let _ = writeln!(
            text,
            "{:<6} {:#18x} {:>9} {:>8} {:>8} {:>7} {:>8} {:>8} {:>6} {:>19}",
            r.worker,
            r.seed,
            r.gen_iters,
            r.gen0_coverage,
            r.exported,
            r.scanned,
            r.admitted,
            r.gen1_coverage,
            r.corpus_len,
            r.digest
        );
        csv.push(format!(
            "{},{:#x},{},{},{},{},{},{},{},{},{}",
            r.worker,
            r.seed,
            r.gen_iters,
            r.gen0_coverage,
            r.exported,
            r.scanned,
            r.admitted,
            r.gen1_coverage,
            r.corpus_len,
            r.digest,
            r.replay_ok
        ));
    }
    if replays_ok {
        let _ = writeln!(
            text,
            "\nGeneration-0 replays reproduced the barrier payloads' corpus digests\n\
             bit-for-bit, so the sync exchange above is a pure function of the\n\
             scale seed — the artifact is identical at any --jobs level."
        );
    } else {
        let _ = writeln!(
            text,
            "\nWARNING: a generation-0 replay diverged from its barrier payload;\n\
             the engine is no longer a pure function of its seed."
        );
    }
    Emitted {
        txt_name: "fuzz_service.txt",
        text,
        csv: Some(Csv {
            name: "fuzz_service.csv",
            header: "worker,seed,gen_iters,gen0_coverage,exported,scanned,admitted,\
                     gen1_coverage,corpus_len,corpus_digest,replay_ok"
                .to_string(),
            rows: csv,
        }),
    }
}

/// Registers the sharded campaign and its emit job, plus the
/// `fuzz-service` generation barrier and its report job.
pub fn register(reg: &mut Registry, scale: &Scale, out: &Path) {
    let s = scale.clone();
    reg.add(JobSpec::new("fuzz-campaign", &[], move |_| {
        (0..FUZZ_SHARDS)
            .map(|shard| {
                let cfg = shard_cfg(&s, shard);
                let range = (cfg.iters * shard as u64, cfg.iters * (shard as u64 + 1));
                ShardSpec::new(shard, range, move |ctx| {
                    let outcome = run(&cfg, &|| ctx.cancelled());
                    data_payload(shard_value(shard, &cfg, &outcome))
                })
            })
            .collect()
    }));
    let dir = out.to_path_buf();
    let total_iters = scale.fuzz_iters;
    reg.add(JobSpec::single("fuzz", &["fuzz-campaign"], move |_, board| {
        let shards: Vec<Value> = board.expect("fuzz-campaign").data().cloned().collect();
        emit_payload(&dir, &render_fuzz(&shards, total_iters))
    }));

    // Generation 0: each worker fuzzes independently and ships its full
    // corpus as an `itr-fuzz-sync/v1` document through the blackboard.
    let s = scale.clone();
    reg.add(JobSpec::new("fuzz-service", &[], move |_| {
        (0..SERVICE_WORKERS)
            .map(|worker| {
                let cfg = service_cfg(&s, worker);
                let range = (cfg.iters * u64::from(worker), cfg.iters * (u64::from(worker) + 1));
                ShardSpec::new(worker, range, move |ctx| {
                    let cancelled = || ctx.cancelled();
                    let mut f = Fuzzer::new(cfg.clone());
                    f.seed(&cancelled);
                    f.run_iters(cfg.iters, &cancelled);
                    let export = sync::render(&f.export_corpus());
                    let outcome = f.outcome();
                    data_payload(obj(vec![
                        ("worker", Value::UInt(u64::from(worker))),
                        ("gen0", outcome.stats_value(&cfg)),
                        ("export", Value::Str(export)),
                    ]))
                })
            })
            .collect()
    }));

    // The barrier report: replay each worker's generation 0 (the engine
    // is a pure function of its seed, so this reproduces the exported
    // corpus exactly — asserted via digest), import the peers' exports,
    // and fuzz generation 1 on the merged frontier.
    let dir = out.to_path_buf();
    let s = scale.clone();
    reg.add(JobSpec::single("fuzz-service-report", &["fuzz-service"], move |ctx, board| {
        let shards: Vec<Value> = board.expect("fuzz-service").data().cloned().collect();
        let exports: Vec<Vec<sync::SyncRecord>> = shards
            .iter()
            .map(|v| {
                sync::parse(get_str(v, "export")).expect("barrier payload carries valid sync doc")
            })
            .collect();
        let cancelled = || ctx.cancelled();
        let mut rows = Vec::new();
        for v in &shards {
            let worker = get_u64(v, "worker") as u32;
            let cfg = service_cfg(&s, worker);
            let gen0 = v.get("gen0").expect("barrier payload carries gen0 stats");
            let mut f = Fuzzer::new(cfg.clone());
            f.seed(&cancelled);
            f.run_iters(cfg.iters, &cancelled);
            let replay_ok =
                format!("{:#018x}", f.corpus().digest()) == get_str(gen0, "corpus_digest");
            let peers: Vec<sync::SyncRecord> = exports
                .iter()
                .enumerate()
                .filter(|(w, _)| *w as u32 != worker)
                .flat_map(|(_, recs)| recs.iter().cloned())
                .collect();
            let (scanned, admitted) = f.import(&peers);
            f.run_iters(cfg.iters, &cancelled);
            rows.push(ServiceRow {
                worker,
                seed: cfg.seed,
                gen_iters: cfg.iters,
                gen0_coverage: get_u64(gen0, "coverage"),
                exported: exports[worker as usize].len() as u64,
                scanned,
                admitted,
                gen1_coverage: f.coverage() as u64,
                corpus_len: f.corpus().entries().len() as u64,
                digest: format!("{:#018x}", f.corpus().digest()),
                replay_ok,
            });
        }
        emit_payload(&dir, &render_fuzz_service(&rows))
    }));
}
