//! The `itr-fuzz` differential campaign as a harness job family: the
//! iteration budget splits across fixed seed-derived shards, each shard
//! runs an independent deterministic fuzzing campaign (same engine the
//! `itr-fuzz` binary drives), and the emit job renders a per-shard
//! summary plus any findings into `fuzz.txt` / `fuzz.csv`.

use super::{data_payload, emit_payload, get_str, get_u64, obj, Csv, Emitted, Scale};
use itr_fuzz::{run, FuzzConfig};
use itr_harness::{JobSpec, Registry, ShardSpec};
use itr_stats::json::Value;
use std::fmt::Write as _;
use std::path::Path;

/// Fixed shard count — part of the deterministic decomposition, so a
/// journaled run resumes shard-for-shard.
pub const FUZZ_SHARDS: u32 = 4;

/// Per-shard engine configuration: the scale's iteration budget divides
/// evenly (remainder to the low shards) and each shard derives its own
/// seed, so shards explore disjoint random streams.
pub fn shard_cfg(scale: &Scale, shard: u32) -> FuzzConfig {
    let per = scale.fuzz_iters / FUZZ_SHARDS as u64;
    let extra = u64::from((shard as u64) < scale.fuzz_iters % FUZZ_SHARDS as u64);
    FuzzConfig {
        seed: scale.seed.wrapping_add(0x1000 * (shard as u64 + 1)),
        iters: per + extra,
        ..FuzzConfig::default()
    }
}

/// One shard's journal-crossing payload: the engine's `itr-fuzz-stats/v1`
/// export plus the shard index and a findings digest (oracle + detail per
/// recorded finding).
fn shard_value(shard: u32, cfg: &FuzzConfig, outcome: &itr_fuzz::FuzzOutcome) -> Value {
    let findings = outcome
        .findings
        .iter()
        .map(|f| {
            obj(vec![
                ("oracle", Value::Str(f.kind.label().to_string())),
                ("detail", Value::Str(f.detail.clone())),
                ("fingerprint", Value::Str(format!("{:#018x}", f.case.fingerprint()))),
            ])
        })
        .collect();
    obj(vec![
        ("shard", Value::UInt(shard as u64)),
        ("stats", outcome.stats_value(cfg)),
        ("findings", Value::Array(findings)),
    ])
}

/// Renders the campaign summary. Shards arrive in index order (the
/// harness preserves shard order per job), so the artifact is stable.
pub fn render_fuzz(shards: &[Value], total_iters: u64) -> Emitted {
    let mut text = String::new();
    let _ = writeln!(text, "=== itr-fuzz differential campaign ({total_iters} iterations) ===");
    let _ = writeln!(
        text,
        "{:<6} {:>18} {:>8} {:>6} {:>9} {:>7} {:>19} {:>13} {:>9}",
        "shard", "seed", "iters", "seeds", "coverage", "corpus", "digest", "golden", "findings"
    );
    let mut rows = Vec::new();
    let mut total_findings = 0u64;
    let mut details: Vec<(u64, String, String)> = Vec::new();
    for v in shards {
        let shard = get_u64(v, "shard");
        let stats = v.get("stats").expect("shard payload carries stats");
        let seed = get_u64(stats, "seed");
        let iters = get_u64(stats, "iterations");
        let seeds = get_u64(stats, "seeds");
        let coverage = get_u64(stats, "coverage");
        let corpus = get_u64(stats, "corpus_len");
        let digest = get_str(stats, "corpus_digest");
        let golden = get_u64(stats, "golden_instrs");
        let findings = get_u64(stats, "findings_total");
        total_findings += findings;
        let _ = writeln!(
            text,
            "{shard:<6} {seed:#18x} {iters:>8} {seeds:>6} {coverage:>9} {corpus:>7} \
             {digest:>19} {golden:>13} {findings:>9}"
        );
        rows.push(format!(
            "{shard},{seed:#x},{iters},{seeds},{coverage},{corpus},{digest},{golden},{findings}"
        ));
        if let Some(list) = v.get("findings").and_then(Value::as_array) {
            for f in list {
                details.push((
                    shard,
                    get_str(f, "oracle").to_string(),
                    get_str(f, "detail").to_string(),
                ));
            }
        }
    }
    if details.is_empty() && total_findings == 0 {
        let _ = writeln!(
            text,
            "\nAll three oracles (commit equivalence, signature determinism, fault\n\
             consistency) held on every input; the corpus digests above make the\n\
             run reproducible bit-for-bit."
        );
    } else {
        let _ = writeln!(text, "\n{total_findings} oracle violation(s):");
        for (shard, oracle, detail) in &details {
            let _ = writeln!(text, "  shard {shard} [{oracle}] {detail}");
        }
        let _ = writeln!(
            text,
            "Shrunken reproducers belong in tests/fuzz_regressions/ (see DESIGN.md §9)."
        );
    }
    Emitted {
        txt_name: "fuzz.txt",
        text,
        csv: Some(Csv {
            name: "fuzz.csv",
            header: "shard,seed,iterations,seeds,coverage,corpus_len,corpus_digest,\
                     golden_instrs,findings"
                .to_string(),
            rows,
        }),
    }
}

/// Registers the sharded campaign and its emit job.
pub fn register(reg: &mut Registry, scale: &Scale, out: &Path) {
    let s = scale.clone();
    reg.add(JobSpec::new("fuzz-campaign", &[], move |_| {
        (0..FUZZ_SHARDS)
            .map(|shard| {
                let cfg = shard_cfg(&s, shard);
                let range = (cfg.iters * shard as u64, cfg.iters * (shard as u64 + 1));
                ShardSpec::new(shard, range, move |ctx| {
                    let outcome = run(&cfg, &|| ctx.cancelled());
                    data_payload(shard_value(shard, &cfg, &outcome))
                })
            })
            .collect()
    }));
    let dir = out.to_path_buf();
    let total_iters = scale.fuzz_iters;
    reg.add(JobSpec::single("fuzz", &["fuzz-campaign"], move |_, board| {
        let shards: Vec<Value> = board.expect("fuzz-campaign").data().cloned().collect();
        emit_payload(&dir, &render_fuzz(&shards, total_iters))
    }));
}
