//! The design-space sweep: one functional simulation per workload fans
//! out — via the `itr-tap/v1` record/replay path — to every point of a
//! 1056-geometry ITR-cache grid, and the emit job distils the grid into
//! a coverage/energy/area Pareto front.
//!
//! The grid crosses trace-length limit × cache entries × associativity
//! × replacement policy. Each workload is simulated **once** per run
//! ([`record_tap`]); each trace-length limit re-segments the recorded
//! dispatch stream through [`TraceReplay`], and [`fan_out_records`]
//! drives all 96 cache geometries of that limit in a single pass over
//! the records. A direct implementation would re-simulate each workload
//! 1056 times; the tap path re-simulates it zero times.

use super::{data_payload, emit_payload, get_arr, get_str, obj, Csv, Emitted, Scale};
use itr_core::{
    fan_out_records, Associativity, CoverageModel, ItrCacheConfig, TraceRecord, TraceReplay,
};
use itr_harness::{JobSpec, Registry, ShardSpec};
use itr_power::{energy_per_access_nj, itr_cache_area_cm2, itr_cache_spec};
use itr_sim::record_tap;
use itr_stats::json::Value;
use itr_workloads::{generate_mimic_sized, profiles, SpecProfile};
use std::fmt::Write as _;
use std::path::Path;

/// Cache sizes (signature entries) the sweep crosses.
pub const SWEEP_ENTRIES: [u32; 8] = [32, 64, 128, 256, 512, 1024, 2048, 4096];

/// Set organisations the sweep crosses. Unlike the Figures 6–7 sweep
/// this stops at 32-way rather than fully-associative: full
/// associativity at thousands of entries is not an implementable SRAM
/// (and its O(entries) probe would dominate the whole sweep's runtime
/// for a design point nobody would build).
pub const SWEEP_ASSOCS: [Associativity; 6] = [
    Associativity::Direct,
    Associativity::Ways(2),
    Associativity::Ways(4),
    Associativity::Ways(8),
    Associativity::Ways(16),
    Associativity::Ways(32),
];

/// Trace-length limits the sweep crosses.
pub const SWEEP_TRACE_LENS: [u32; 11] = [2, 4, 6, 8, 10, 12, 16, 20, 24, 28, 32];

/// One point of the sweep grid.
#[derive(Debug, Clone, Copy)]
pub struct Geometry {
    /// Trace-length limit (instructions per signature).
    pub trace_len: u32,
    /// Signature entries in the ITR cache.
    pub entries: u32,
    /// Set organisation.
    pub assoc: Associativity,
    /// Checked-bit-aware replacement instead of plain LRU.
    pub checked: bool,
}

impl Geometry {
    /// Bits per cache entry: 64-bit signature + parity (+ checked bit).
    pub fn entry_bits(&self) -> u32 {
        65 + u32::from(self.checked)
    }

    /// Per-access energy of this cache geometry (nJ).
    pub fn energy_nj(&self) -> f64 {
        energy_per_access_nj(&itr_cache_spec(self.entries, self.assoc.ways(self.entries)))
    }

    /// Estimated die area of this cache geometry (cm²).
    pub fn area_cm2(&self) -> f64 {
        itr_cache_area_cm2(self.entries, self.entry_bits())
    }
}

/// The full grid in canonical order (trace length outermost, then
/// entries, associativity, replacement) — the order every shard's
/// `counts` vector and the emitted CSV follow.
pub fn geometries() -> Vec<Geometry> {
    let mut v =
        Vec::with_capacity(SWEEP_TRACE_LENS.len() * SWEEP_ENTRIES.len() * SWEEP_ASSOCS.len() * 2);
    for &trace_len in &SWEEP_TRACE_LENS {
        for &entries in &SWEEP_ENTRIES {
            for assoc in SWEEP_ASSOCS {
                for checked in [false, true] {
                    v.push(Geometry { trace_len, entries, assoc, checked });
                }
            }
        }
    }
    v
}

/// One workload's raw loss counts across the whole grid, in
/// [`geometries`] order: `(total_instrs, detection_loss, recovery_loss)`.
#[derive(Debug, Clone)]
pub struct SweepUnit {
    /// Benchmark name.
    pub name: String,
    /// Per-geometry instruction counts.
    pub counts: Vec<(u64, u64, u64)>,
}

impl SweepUnit {
    /// Journal-crossing encoding.
    pub fn to_value(&self) -> Value {
        obj(vec![
            ("name", Value::Str(self.name.clone())),
            (
                "counts",
                Value::Array(
                    self.counts
                        .iter()
                        .map(|&(t, d, r)| {
                            Value::Array(vec![Value::UInt(t), Value::UInt(d), Value::UInt(r)])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Decoding.
    pub fn from_value(v: &Value) -> SweepUnit {
        SweepUnit {
            name: get_str(v, "name").to_string(),
            counts: get_arr(v, "counts")
                .iter()
                .map(|row| {
                    let row = row.as_array().expect("counts row");
                    let at = |i: usize| row[i].as_u64().expect("count");
                    (at(0), at(1), at(2))
                })
                .collect(),
        }
    }
}

/// Sweeps one workload — the compute shard body. Simulates the program
/// once, then replays the tap stream into all 1056 grid points.
pub fn sweep_unit(profile: SpecProfile, seed: u64, program_instrs: u64) -> SweepUnit {
    let program = generate_mimic_sized(profile, seed, program_instrs);
    let tap = record_tap(&program, profile.name, program_instrs);
    let mut counts = Vec::with_capacity(geometries().len());
    for &trace_len in &SWEEP_TRACE_LENS {
        let mut replay = TraceReplay::new(trace_len);
        let mut records: Vec<TraceRecord> = Vec::new();
        for (pc, sig, extra) in tap.dispatches() {
            if let Some(t) = replay.push(pc, sig, extra) {
                records.push(t);
            }
        }
        let mut models: Vec<CoverageModel> = Vec::new();
        for &entries in &SWEEP_ENTRIES {
            for assoc in SWEEP_ASSOCS {
                for checked in [false, true] {
                    models.push(CoverageModel::new(
                        ItrCacheConfig::new(entries, assoc).with_checked_bit_replacement(checked),
                    ));
                }
            }
        }
        fan_out_records(&records, &mut models);
        for m in &models {
            let r = m.report();
            counts.push((r.total_instrs, r.detection_loss_instrs, r.recovery_loss_instrs));
        }
    }
    SweepUnit { name: profile.name.to_string(), counts }
}

/// One aggregated grid point, ready to rank.
struct SweepRow {
    geom: Geometry,
    det_pct: f64,
    rec_pct: f64,
    energy_nj: f64,
    area_cm2: f64,
    pareto: bool,
}

/// `a` dominates `b` when it is no worse on every objective and
/// strictly better on at least one (all four are minimised).
fn dominates(a: &SweepRow, b: &SweepRow) -> bool {
    let le = a.det_pct <= b.det_pct
        && a.rec_pct <= b.rec_pct
        && a.energy_nj <= b.energy_nj
        && a.area_cm2 <= b.area_cm2;
    let lt = a.det_pct < b.det_pct
        || a.rec_pct < b.rec_pct
        || a.energy_nj < b.energy_nj
        || a.area_cm2 < b.area_cm2;
    le && lt
}

/// Renders the sweep artifacts: the Pareto front as text, the full grid
/// (with a `pareto` flag column) as CSV.
pub fn render_sweep(units: &[SweepUnit]) -> Emitted {
    let geoms = geometries();
    let mut total = vec![(0u64, 0u64, 0u64); geoms.len()];
    for u in units {
        assert_eq!(u.counts.len(), geoms.len(), "grid shape mismatch for {}", u.name);
        for (acc, &(t, d, r)) in total.iter_mut().zip(&u.counts) {
            acc.0 += t;
            acc.1 += d;
            acc.2 += r;
        }
    }
    let mut rows: Vec<SweepRow> = geoms
        .iter()
        .zip(&total)
        .map(|(&geom, &(t, d, r))| SweepRow {
            geom,
            det_pct: d as f64 / t.max(1) as f64 * 100.0,
            rec_pct: r as f64 / t.max(1) as f64 * 100.0,
            energy_nj: geom.energy_nj(),
            area_cm2: geom.area_cm2(),
            pareto: true,
        })
        .collect();
    for i in 0..rows.len() {
        rows[i].pareto = !rows.iter().any(|other| dominates(other, &rows[i]));
    }

    let mut text = String::new();
    let names: Vec<&str> = units.iter().map(|u| u.name.as_str()).collect();
    let front = rows.iter().filter(|r| r.pareto).count();
    let _ = writeln!(text, "=== Design-space sweep: coverage / energy / area Pareto front ===");
    let _ = writeln!(
        text,
        "grid: {} trace lengths x {} sizes x {} assoc x 2 replacement = {} geometries",
        SWEEP_TRACE_LENS.len(),
        SWEEP_ENTRIES.len(),
        SWEEP_ASSOCS.len(),
        geoms.len()
    );
    let _ = writeln!(
        text,
        "losses aggregated over {} workloads ({}), instruction-weighted",
        names.len(),
        names.join(", ")
    );
    let _ = writeln!(
        text,
        "objectives minimised: detection loss %, recovery loss %, nJ/access, cm^2\n"
    );
    let _ = writeln!(text, "Pareto front ({front} of {} geometries):", geoms.len());
    let _ = writeln!(
        text,
        "{:<6} {:>8} {:<7} {:>4} {:>9} {:>9} {:>10} {:>10}",
        "tlen", "entries", "assoc", "ckd", "det", "rec", "nJ/access", "cm^2"
    );
    for r in rows.iter().filter(|r| r.pareto) {
        let _ = writeln!(
            text,
            "{:<6} {:>8} {:<7} {:>4} {:>8.3}% {:>8.3}% {:>10.4} {:>10.6}",
            r.geom.trace_len,
            r.geom.entries,
            r.geom.assoc.label(),
            if r.geom.checked { "ckd" } else { "lru" },
            r.det_pct,
            r.rec_pct,
            r.energy_nj,
            r.area_cm2
        );
    }
    let paper = rows
        .iter()
        .find(|r| {
            r.geom.trace_len == 16
                && r.geom.entries == 1024
                && r.geom.assoc == Associativity::Ways(2)
                && !r.geom.checked
        })
        .expect("paper point in grid");
    let _ = writeln!(
        text,
        "\npaper point (1024x2-way, len 16, LRU): det {:.3}% rec {:.3}% {:.4} nJ \
         {:.6} cm^2 — {}on the front",
        paper.det_pct,
        paper.rec_pct,
        paper.energy_nj,
        paper.area_cm2,
        if paper.pareto { "" } else { "not " }
    );

    let csv_rows = rows
        .iter()
        .map(|r| {
            format!(
                "{},{},{},{},{:.4},{:.4},{:.5},{:.7},{}",
                r.geom.trace_len,
                r.geom.entries,
                r.geom.assoc.label(),
                u8::from(r.geom.checked),
                r.det_pct,
                r.rec_pct,
                r.energy_nj,
                r.area_cm2,
                u8::from(r.pareto)
            )
        })
        .collect();
    Emitted {
        txt_name: "sweep.txt",
        text,
        csv: Some(Csv {
            name: "sweep_pareto.csv",
            header: "trace_len,entries,assoc,checked,detection_loss_pct,recovery_loss_pct,\
                     energy_nj_per_access,area_cm2,pareto"
                .to_string(),
            rows: csv_rows,
        }),
    }
}

/// Registers the sweep compute job (one shard per workload — the unit
/// of work is now a simulation, not a configuration) and its emit job.
pub fn register(reg: &mut Registry, scale: &Scale, out: &Path) {
    let s = scale.clone();
    reg.add(JobSpec::new("sweep", &[], move |_| {
        profiles::coverage_figure_set()
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                let s = s.clone();
                ShardSpec::new(i as u32, (i as u64, i as u64 + 1), move |_| {
                    data_payload(sweep_unit(p, s.seed, s.program_instrs).to_value())
                })
            })
            .collect()
    }));
    let dir = out.to_path_buf();
    reg.add(JobSpec::single("sweep-pareto", &["sweep"], move |_, board| {
        let units: Vec<SweepUnit> =
            board.expect("sweep").data().map(SweepUnit::from_value).collect();
        emit_payload(&dir, &render_sweep(&units))
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_the_advertised_shape() {
        let g = geometries();
        assert_eq!(g.len(), 1056);
        assert_eq!(g.len(), SWEEP_TRACE_LENS.len() * SWEEP_ENTRIES.len() * 6 * 2);
    }

    #[test]
    fn paper_geometry_matches_published_energy() {
        let geom = Geometry {
            trace_len: 16,
            entries: 1024,
            assoc: Associativity::Ways(2),
            checked: false,
        };
        assert!((geom.energy_nj() - 0.58).abs() < 0.005);
        assert_eq!(geom.entry_bits(), 65);
    }

    #[test]
    fn pareto_front_is_nonempty_and_mutually_nondominated() {
        let profile = profiles::by_name("vortex").expect("vortex profile");
        let unit = sweep_unit(profile, 1, 4_000);
        assert_eq!(unit.counts.len(), 1056);
        let emitted = render_sweep(&[unit]);
        let front: Vec<&String> =
            emitted.csv.as_ref().expect("csv").rows.iter().filter(|r| r.ends_with(",1")).collect();
        assert!(!front.is_empty(), "empty Pareto front");
        // Round-trip the unit encoding while we are here.
        let profile = profiles::by_name("vortex").expect("vortex profile");
        let unit = sweep_unit(profile, 1, 4_000);
        let decoded = SweepUnit::from_value(&unit.to_value());
        assert_eq!(decoded.counts, unit.counts);
    }
}
