//! Checkpoint/rollback recovery reproduction family (`itr-recover`).
//!
//! One compute family plus one emit job:
//!
//! * **recover-sweep** — one shard per (workload × fault-model kind ×
//!   checkpoint condition). Each shard samples a pinned campaign of
//!   that model, classifies every fault once in passive mode (the
//!   Figure-8 heuristic), then runs the recovery engine at every
//!   checkpoint spacing in [`GAPS`] — producing the ground-truth
//!   recovery-coverage-vs-checkpoint-cost curve, with the heuristic
//!   `ItrMask`/`ItrSdcD` predictions confirmed or corrected per fault.
//!   The conditions are the paper's strict §2.3 rule (zero availability
//!   on real programs — the baseline), bounded wait, and bounded wait
//!   under `itr-env`-style context switching (cache flushed every
//!   quantum, including mid-retry).
//! * **recover-report** — renders `recover.txt` / `recover.csv`.

use super::{data_payload, emit_payload, get_str, get_u64, obj, Csv, Emitted, Scale};
use itr_faults::{CampaignConfig, ModelKind};
use itr_harness::{JobSpec, Registry, ShardSpec};
use itr_isa::asm::assemble;
use itr_recover::{sweep_kind, ActualOutcome, SweepCell, BOUNDED_WAIT_AGE};
use itr_stats::json::Value;
use itr_workloads::kernels;
use std::fmt::Write as _;
use std::path::Path;

/// The swept workloads: detection-rich kernels that halt quickly, so
/// every sampled fault's golden run fits a small budget.
pub const RECOVER_PROGRAMS: [&str; 2] = ["crc32", "rle_compress"];

/// The swept fault-model kinds: the paper's SEU baseline, a persistent
/// model (retry cannot absorb it), and the burst-during-retry
/// interaction scenario.
pub const RECOVER_KINDS: [ModelKind; 3] =
    [ModelKind::Seu, ModelKind::StuckAt0, ModelKind::BurstOnRetry];

/// Checkpoint spacings swept per condition (committed instructions).
pub const GAPS: [u64; 4] = [0, 256, 1_024, 4_096];

/// Context-switch quantum of the `ctx` condition (cycles).
pub const SWITCH_QUANTUM: u64 = 2_500;

/// Cycle budget per active run.
pub const MAX_CYCLES: u64 = 4_000_000;

/// Instruction budget for the golden reference runs.
pub const GOLDEN_INSTRS: u64 = 400_000;

/// One checkpoint condition of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct Condition {
    /// Stable label used in reports and CSVs.
    pub label: &'static str,
    /// Bounded-wait age window, or `None` for the strict §2.3 rule.
    pub line_age: Option<u64>,
    /// Context-switch quantum, or `None` for uninterrupted runs.
    pub switch_cycles: Option<u64>,
}

/// The swept conditions, in shard order.
pub const CONDITIONS: [Condition; 3] = [
    Condition { label: "strict", line_age: None, switch_cycles: None },
    Condition { label: "aged", line_age: Some(BOUNDED_WAIT_AGE), switch_cycles: None },
    Condition {
        label: "aged+ctx",
        line_age: Some(BOUNDED_WAIT_AGE),
        switch_cycles: Some(SWITCH_QUANTUM),
    },
];

/// The pinned recovery campaign. Fault windows target the early decode
/// range where record instances live — committed corruption that the
/// engine must actually roll back, not just retry away.
pub fn recover_cfg(scale: &Scale) -> CampaignConfig {
    CampaignConfig {
        faults: (scale.faults / 16).max(6),
        window_cycles: (scale.window_cycles / 5).max(10_000),
        min_decode: 10,
        max_decode: 300,
        seed: scale.seed ^ 0x4EC0_7E4A,
        threads: 0,
        ..CampaignConfig::default()
    }
}

fn assembled(name: &str) -> itr_isa::Program {
    let kernel = kernels::all()
        .into_iter()
        .find(|k| k.name == name)
        .unwrap_or_else(|| panic!("unknown kernel {name}"));
    assemble(kernel.source).unwrap_or_else(|e| panic!("{name} failed to assemble: {e:?}"))
}

/// The shard grid, in shard order.
pub fn sweep_points() -> Vec<(&'static str, ModelKind, Condition)> {
    let mut points = Vec::new();
    for &program in &RECOVER_PROGRAMS {
        for &kind in &RECOVER_KINDS {
            for &cond in &CONDITIONS {
                points.push((program, kind, cond));
            }
        }
    }
    points
}

/// One rendered sweep row: a [`SweepCell`] plus its shard coordinates.
#[derive(Debug, Clone)]
pub struct RecoverRow {
    /// Workload name.
    pub program: String,
    /// Fault-model kind label.
    pub kind: String,
    /// Checkpoint-condition label.
    pub cond: String,
    /// The aggregated cell.
    pub cell: SweepCell,
}

/// Renders `recover.txt` / `recover.csv`.
pub fn render_recover(rows: &[RecoverRow], faults: u32) -> Emitted {
    let mut text = String::new();
    let _ = writeln!(
        text,
        "=== Checkpoint/rollback recovery: ground truth vs the Figure-8 heuristic ===",
    );
    let _ = writeln!(
        text,
        "({faults} sampled faults per (workload, model); every fault classified once\n\
         passively, then run under full active-mode recovery at each checkpoint\n\
         spacing; conditions: strict = the paper's §2.3 rule, aged = bounded wait\n\
         ({BOUNDED_WAIT_AGE}-event line age), aged+ctx = bounded wait with the ITR cache flushed\n\
         every {SWITCH_QUANTUM} cycles)\n"
    );
    let _ = writeln!(
        text,
        "{:>12} {:>14} {:>8} {:>5} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>9} {:>10} {:>8} {:>8}",
        "program",
        "model",
        "cond",
        "gap",
        "clean",
        "sdc",
        "recov",
        "r-out",
        "r-sdc",
        "fatal",
        "ckpt/ki",
        "coverage%",
        "confirm",
        "correct"
    );
    let mut csv_rows = Vec::new();
    for r in rows {
        let c = &r.cell;
        let _ = writeln!(
            text,
            "{:>12} {:>14} {:>8} {:>5} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>9.2} {:>9.1}% {:>8} {:>8}",
            r.program,
            r.kind,
            r.cond,
            c.gap,
            c.count(ActualOutcome::FinishedClean),
            c.count(ActualOutcome::FinishedSdc),
            c.count(ActualOutcome::Recovered),
            c.count(ActualOutcome::RecoveredOutputLoss),
            c.count(ActualOutcome::RollbackSdc),
            c.count(ActualOutcome::Fatal),
            c.checkpoints_per_kinstr(),
            c.recovery_coverage_pct(),
            c.confirmed,
            c.corrected
        );
        csv_rows.push(format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.4},{:.4},{:.2}",
            r.program,
            r.kind,
            r.cond,
            c.gap,
            c.count(ActualOutcome::FinishedClean),
            c.count(ActualOutcome::FinishedSdc),
            c.count(ActualOutcome::Recovered),
            c.count(ActualOutcome::RecoveredOutputLoss),
            c.count(ActualOutcome::RollbackSdc),
            c.count(ActualOutcome::Fatal),
            c.count(ActualOutcome::Hung),
            c.confirmed,
            c.corrected,
            c.unpredicted,
            c.checkpoints,
            c.rollbacks,
            c.checkpoints_per_kinstr(),
            c.recovery_coverage_pct(),
            c.mean_rollback_distance()
        ));
    }
    let strict_ckpts: u64 =
        rows.iter().filter(|r| r.cond == "strict").map(|r| r.cell.checkpoints).sum();
    let violations: u32 = rows.iter().map(|r| r.cell.violations).sum();
    assert_eq!(violations, 0, "sound recovery invariants must hold across the sweep");
    let _ = writeln!(
        text,
        "\nThe strict condition took {strict_ckpts} checkpoints across every workload: a\n\
         single run-once trace (any prologue) blocks it for the rest of the run, so\n\
         every detection under it is fatal. Bounded wait restores availability; its\n\
         price is the r-sdc column (a checkpoint can cover corruption an aged-out\n\
         line still carried). Sound invariant violations: {violations} (asserted zero).",
    );
    Emitted {
        txt_name: "recover.txt",
        text,
        csv: Some(Csv {
            name: "recover.csv",
            header: "program,kind,cond,gap,finished_clean,finished_sdc,recovered,\
                     recovered_output_loss,rollback_sdc,fatal,hung,confirmed,corrected,\
                     unpredicted,checkpoints,rollbacks,ckpt_per_kinstr,coverage_pct,\
                     mean_rollback_distance"
                .to_string(),
            rows: csv_rows,
        }),
    }
}

/// Registers the sweep family and the emit job.
pub fn register(reg: &mut Registry, scale: &Scale, out: &Path) {
    let s = scale.clone();
    reg.add(JobSpec::new("recover-sweep", &[], move |_| {
        let cfg = recover_cfg(&s);
        sweep_points()
            .into_iter()
            .enumerate()
            .map(|(i, (program, kind, cond))| {
                let cfg = cfg.clone();
                ShardSpec::new(i as u32, (0, u64::from(cfg.faults)), move |ctx| {
                    let p = assembled(program);
                    let cells = sweep_kind(
                        &p,
                        kind,
                        &cfg,
                        &GAPS,
                        cond.line_age,
                        MAX_CYCLES,
                        GOLDEN_INSTRS,
                        cond.switch_cycles,
                        &|| ctx.cancelled(),
                    );
                    data_payload(obj(vec![
                        ("program", Value::Str(program.into())),
                        ("kind", Value::Str(kind.label().into())),
                        ("cond", Value::Str(cond.label.into())),
                        (
                            "cells",
                            Value::Array(
                                cells
                                    .iter()
                                    .map(|c| {
                                        obj(vec![
                                            ("gap", Value::UInt(c.gap)),
                                            (
                                                "counts",
                                                Value::Array(
                                                    c.counts
                                                        .iter()
                                                        .map(|&n| Value::UInt(u64::from(n)))
                                                        .collect(),
                                                ),
                                            ),
                                            ("confirmed", Value::UInt(u64::from(c.confirmed))),
                                            ("corrected", Value::UInt(u64::from(c.corrected))),
                                            ("unpredicted", Value::UInt(u64::from(c.unpredicted))),
                                            ("violations", Value::UInt(u64::from(c.violations))),
                                            ("checkpoints", Value::UInt(c.checkpoints)),
                                            ("opportunities", Value::UInt(c.opportunities)),
                                            ("committed", Value::UInt(c.committed)),
                                            ("rollbacks", Value::UInt(u64::from(c.rollbacks))),
                                            (
                                                "rollback_distance_sum",
                                                Value::UInt(c.rollback_distance_sum),
                                            ),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ]))
                })
            })
            .collect()
    }));

    let dir = out.to_path_buf();
    let s = scale.clone();
    reg.add(JobSpec::single("recover-report", &["recover-sweep"], move |_, board| {
        let mut rows = Vec::new();
        for d in board.expect("recover-sweep").data() {
            let cells = d.get("cells").and_then(Value::as_array).expect("cells");
            for c in cells {
                let mut counts = [0u32; 7];
                let arr = c.get("counts").and_then(Value::as_array).expect("counts");
                for (e, n) in counts.iter_mut().zip(arr) {
                    *e = n.as_u64().expect("count") as u32;
                }
                rows.push(RecoverRow {
                    program: get_str(d, "program").to_string(),
                    kind: get_str(d, "kind").to_string(),
                    cond: get_str(d, "cond").to_string(),
                    cell: SweepCell {
                        gap: get_u64(c, "gap"),
                        counts,
                        confirmed: get_u64(c, "confirmed") as u32,
                        corrected: get_u64(c, "corrected") as u32,
                        unpredicted: get_u64(c, "unpredicted") as u32,
                        violations: get_u64(c, "violations") as u32,
                        checkpoints: get_u64(c, "checkpoints"),
                        opportunities: get_u64(c, "opportunities"),
                        committed: get_u64(c, "committed"),
                        rollbacks: get_u64(c, "rollbacks") as u32,
                        rollback_distance_sum: get_u64(c, "rollback_distance_sum"),
                    },
                });
            }
        }
        emit_payload(&dir, &render_recover(&rows, recover_cfg(&s).faults))
    }));
}
