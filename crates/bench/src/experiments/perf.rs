//! Performance overhead of the ITR machinery: IPC with and without the
//! ITR unit (plus the §3 redundant-fetch fallback), one shard per
//! workload.

use super::{data_payload, emit_payload, get_f64, get_str, obj, Csv, Emitted, Scale};
use itr_core::ItrConfig;
use itr_harness::{JobSpec, Registry, ShardSpec};
use itr_isa::asm::assemble;
use itr_isa::Program;
use itr_sim::{Pipeline, PipelineConfig};
use itr_stats::json::Value;
use itr_stats::Report;
use itr_workloads::{generate_mimic_sized, kernels, profiles};
use std::fmt::Write as _;
use std::path::Path;

/// Cycle budget for the hand-written kernels (they halt long before it).
pub const KERNEL_BUDGET: u64 = 50_000_000;

/// IPC read back from the run's `itr-stats/v1` JSON export rather than
/// the live stats struct, exercising the same path external tooling
/// uses.
pub fn ipc(program: &Program, cfg: PipelineConfig, max_cycles: u64) -> f64 {
    let mut pipe = Pipeline::new(program, cfg);
    pipe.run(max_cycles);
    let report =
        Report::from_json(&pipe.stats_json()).expect("pipeline emits a valid itr-stats/v1 report");
    let cycles = report.counter("pipeline", "cycles").unwrap_or(0);
    let committed = report.counter("pipeline", "committed").unwrap_or(0);
    if cycles == 0 {
        0.0
    } else {
        committed as f64 / cycles as f64
    }
}

/// One workload's three IPC measurements.
#[derive(Debug, Clone)]
pub struct PerfUnit {
    /// Workload name.
    pub name: String,
    /// Baseline IPC (no ITR unit).
    pub base: f64,
    /// IPC with the ITR unit.
    pub itr: f64,
    /// IPC with ITR plus redundant fetch on miss.
    pub rfod: f64,
}

impl PerfUnit {
    /// Journal-crossing encoding.
    pub fn to_value(&self) -> Value {
        obj(vec![
            ("name", Value::Str(self.name.clone())),
            ("base", Value::Float(self.base)),
            ("itr", Value::Float(self.itr)),
            ("rfod", Value::Float(self.rfod)),
        ])
    }

    /// Decoding.
    pub fn from_value(v: &Value) -> PerfUnit {
        PerfUnit {
            name: get_str(v, "name").to_string(),
            base: get_f64(v, "base"),
            itr: get_f64(v, "itr"),
            rfod: get_f64(v, "rfod"),
        }
    }
}

/// Measures one workload — the shard body, also used serially by the
/// `perf_overhead` binary.
pub fn measure(name: &str, program: &Program, budget: u64) -> PerfUnit {
    let base = ipc(program, PipelineConfig::default(), budget);
    let itr = ipc(program, PipelineConfig::with_itr(), budget);
    let rfod_cfg = PipelineConfig {
        itr: Some(ItrConfig { redundant_fetch_on_miss: true, ..ItrConfig::paper_default() }),
        ..PipelineConfig::default()
    };
    let rfod = ipc(program, rfod_cfg, budget);
    PerfUnit { name: name.to_string(), base, itr, rfod }
}

/// Renders the study exactly as the `perf_overhead` binary prints it.
pub fn render_perf(units: &[PerfUnit]) -> Emitted {
    let mut text = String::new();
    let _ = writeln!(text, "=== ITR performance overhead (IPC) ===");
    let _ = writeln!(
        text,
        "{:<12} {:>9} {:>9} {:>9} {:>10} {:>10}",
        "workload", "baseline", "ITR", "ITR+rfod", "ITR ovh", "rfod ovh"
    );
    let mut rows = Vec::new();
    for u in units {
        let ovh = (1.0 - u.itr / u.base) * 100.0;
        let rovh = (1.0 - u.rfod / u.base) * 100.0;
        let _ = writeln!(
            text,
            "{:<12} {:>9.3} {:>9.3} {:>9.3} {ovh:>9.2}% {rovh:>9.2}%",
            u.name, u.base, u.itr, u.rfod
        );
        rows.push(format!("{},{:.4},{:.4},{:.4}", u.name, u.base, u.itr, u.rfod));
    }
    let _ = writeln!(
        text,
        "\nExpected: plain ITR costs at most a few percent (interlock rarely on the"
    );
    let _ = writeln!(
        text,
        "critical path); the redundant-fetch fallback costs more where miss rates are"
    );
    let _ =
        writeln!(text, "high (vortex/perl/gcc), the bandwidth-for-coverage trade §3 describes.");
    Emitted {
        txt_name: "perf_overhead.txt",
        text,
        csv: Some(Csv {
            name: "perf_overhead.csv",
            header: "workload,baseline_ipc,itr_ipc,rfod_ipc".to_string(),
            rows,
        }),
    }
}

/// Registers the measurement job and its emit job.
pub fn register(reg: &mut Registry, scale: &Scale, out: &Path) {
    let s = scale.clone();
    reg.add(JobSpec::new("perf-ipc", &[], move |_| {
        let mut shards = Vec::new();
        let mut index = 0u32;
        for kernel in kernels::all() {
            shards.push(ShardSpec::new(index, (index as u64, index as u64 + 1), move |_| {
                let program = assemble(kernel.source).expect("kernel assembles");
                data_payload(measure(kernel.name, &program, KERNEL_BUDGET).to_value())
            }));
            index += 1;
        }
        for profile in profiles::all() {
            let s = s.clone();
            shards.push(ShardSpec::new(index, (index as u64, index as u64 + 1), move |_| {
                let program = generate_mimic_sized(profile, s.seed, s.program_instrs);
                data_payload(measure(profile.name, &program, s.program_instrs * 20).to_value())
            }));
            index += 1;
        }
        shards
    }));
    let dir = out.to_path_buf();
    reg.add(JobSpec::single("perf-overhead", &["perf-ipc"], move |_, board| {
        let units: Vec<PerfUnit> =
            board.expect("perf-ipc").data().map(PerfUnit::from_value).collect();
        emit_payload(&dir, &render_perf(&units))
    }));
}
