//! Hostile-environment reproduction families (`itr-env`).
//!
//! Three compute families plus one emit job:
//!
//! * **env-interleave** — one shard per schedule point (switch policy ×
//!   preemption × quantum). The program set is recorded **once** when
//!   the job plans its shards; every shard replays the same recordings
//!   through its own shared ITR unit — the `itr-tap/v1` fan-out
//!   economics applied to OS scheduling instead of cache geometry.
//! * **env-faultmodels** — one shard per [`ModelKind`]: a sampled
//!   campaign of that model over a mimic workload, classified through
//!   the Figure-8 outcome taxonomy (so every extended fault model is
//!   exercised by at least one campaign shard).
//! * **env-workloads** — one shard per new workload family
//!   (compression, parsing, packet processing): self-check output plus
//!   a Table-1-style repetition characterization.
//! * **env-report** — renders `env.txt` / `env.csv` from the three.

use super::{data_payload, emit_payload, get_str, get_u64, obj, Csv, Emitted, Scale};
use crate::StreamStats;
use itr_core::ItrConfig;
use itr_env::{record_program_set, run_scenario, Preemption, ScenarioConfig, SwitchPolicy};
use itr_faults::{CampaignConfig, FaultModel, ModelKind, ModelPlan, Outcome};
use itr_harness::{JobSpec, Registry, ShardSpec};
use itr_isa::asm::assemble;
use itr_sim::{FuncSim, TraceStream};
use itr_stats::json::Value;
use itr_workloads::{generate_mimic_sized, kernels, profiles};
use std::fmt::Write as _;
use std::path::Path;

/// The interleaved program set: one classic kernel plus the three new
/// hostile-environment workload families.
pub const ENV_PROGRAMS: [&str; 4] = ["crc32", "rle_compress", "json_parse", "pkt_parse"];

/// Dispatches recorded per program (the streams cycle past this).
pub const ENV_RECORD_INSTRS: u64 = 3_000;

/// Periodic quanta the interleave study sweeps (dispatches per slice).
pub const QUANTA: [u64; 4] = [64, 256, 1024, 4096];

/// Mean slice length of the random-preemption points.
pub const RANDOM_MEAN_QUANTUM: u64 = 256;

/// The new workload families characterized by `env-workloads`.
pub const NEW_WORKLOADS: [&str; 3] = ["rle_compress", "json_parse", "pkt_parse"];

/// Mimic-program size for the fault-model campaigns.
pub const MODEL_PROGRAM_INSTRS: u64 = 60_000;

/// Total dispatches of one interleave schedule point.
pub fn interleave_budget(scale: &Scale) -> u64 {
    (scale.instrs / 80).clamp(20_000, 200_000)
}

/// The schedule points, in shard order: every periodic quantum plus one
/// random-preemption point, for each switch policy.
pub fn schedule_points(scale: &Scale) -> Vec<(SwitchPolicy, Preemption)> {
    let mut points = Vec::new();
    for policy in SwitchPolicy::ALL {
        for &quantum in &QUANTA {
            points.push((policy, Preemption::Periodic { quantum }));
        }
        points.push((
            policy,
            Preemption::Random {
                mean_quantum: RANDOM_MEAN_QUANTUM,
                seed: scale.seed ^ 0x00C0_FFEE,
            },
        ));
    }
    points
}

/// The fault-model campaign configuration (smaller windows than the SEU
/// campaigns: each shard runs a whole campaign of one model kind).
pub fn model_cfg(scale: &Scale) -> CampaignConfig {
    CampaignConfig {
        faults: (scale.faults / 8).max(8),
        window_cycles: (scale.window_cycles / 5).max(10_000),
        min_decode: 100,
        max_decode: 4_000,
        seed: scale.seed ^ 0x0E0F_A017,
        threads: 0,
        ..CampaignConfig::default()
    }
}

fn quantum_of(p: &Preemption) -> u64 {
    match *p {
        Preemption::Periodic { quantum } => quantum,
        Preemption::Random { mean_quantum, .. } => mean_quantum,
    }
}

fn assembled(name: &str) -> (itr_isa::Program, &'static str) {
    let kernel = kernels::all()
        .into_iter()
        .find(|k| k.name == name)
        .unwrap_or_else(|| panic!("unknown kernel {name}"));
    let program =
        assemble(kernel.source).unwrap_or_else(|e| panic!("{name} failed to assemble: {e:?}"));
    (program, kernel.expected_output)
}

/// One interleave point as journaled/rendered.
#[derive(Debug, Clone)]
pub struct InterleaveRow {
    /// Switch-policy label (`flush` / `pollute`).
    pub policy: String,
    /// Preemption label (`periodic` / `random`).
    pub sched: String,
    /// Quantum (mean quantum for random preemption).
    pub quantum: u64,
    /// Context switches taken.
    pub switches: u64,
    /// Committed instructions.
    pub instrs: u64,
    /// Detection loss % (evictions + switch flushes).
    pub det_pct: f64,
    /// Recovery loss %.
    pub rec_pct: f64,
    /// Detection-coverage instructions lost to switch flushes alone.
    pub flush_unref_instrs: u64,
    /// Shared-SPC violations (expected 0).
    pub spc_violations: u64,
    /// Probe miss rate in the first 16 dispatches after a switch.
    pub cold_miss_pct: f64,
    /// Probe miss rate ≥ 64 dispatches after a switch.
    pub warm_miss_pct: f64,
}

/// Renders `env.txt` / `env.csv`.
pub fn render_env(
    interleave: &[InterleaveRow],
    models: &[(String, u64, [u64; 10], bool)],
    workloads: &[(String, String, String, u64, u64, f64, f64)],
    budget: u64,
    model_faults: u32,
) -> Emitted {
    let mut text = String::new();
    let _ = writeln!(
        text,
        "=== Hostile environments: {} programs time-sliced through one shared ITR cache ===",
        ENV_PROGRAMS.len()
    );
    let _ = writeln!(
        text,
        "({} dispatches per schedule; each program recorded once via itr-tap/v1,\n\
         every schedule point replays the same recordings)\n",
        budget
    );
    let _ = writeln!(
        text,
        "{:>8} {:>9} {:>8} {:>9} {:>9} {:>9} {:>9} {:>12} {:>9}",
        "policy",
        "sched",
        "quantum",
        "switches",
        "det-loss%",
        "rec-loss%",
        "flush-loss",
        "cold-miss%",
        "spc-viol"
    );
    let mut rows = Vec::new();
    for r in interleave {
        let _ = writeln!(
            text,
            "{:>8} {:>9} {:>8} {:>9} {:>8.2}% {:>8.2}% {:>9} {:>11.1}% {:>9}",
            r.policy,
            r.sched,
            r.quantum,
            r.switches,
            r.det_pct,
            r.rec_pct,
            r.flush_unref_instrs,
            r.cold_miss_pct,
            r.spc_violations
        );
        rows.push(format!(
            "{},{},{},{},{},{:.4},{:.4},{},{},{:.2},{:.2}",
            r.policy,
            r.sched,
            r.quantum,
            r.switches,
            r.instrs,
            r.det_pct,
            r.rec_pct,
            r.flush_unref_instrs,
            r.spc_violations,
            r.cold_miss_pct,
            r.warm_miss_pct
        ));
    }
    let _ = writeln!(
        text,
        "\nWarm-up: cold-miss% is the ITR probe miss rate within 16 dispatches of a\n\
         switch, vs {:.1}%–{:.1}% once warm — flushing on switch re-pays the cold-start\n\
         misses every quantum, and at small quanta also forfeits detection coverage\n\
         (flush-loss = unreferenced instructions invalidated at switches, the §3\n\
         detection-loss measure applied to context switching).",
        interleave.iter().map(|r| r.warm_miss_pct).fold(f64::INFINITY, f64::min),
        interleave.iter().map(|r| r.warm_miss_pct).fold(0.0, f64::max),
    );

    let _ = writeln!(
        text,
        "\n=== Extended fault models ({model_faults} sampled instances per model) ==="
    );
    let _ = writeln!(
        text,
        "{:>14} {:>9} {:>7} {:>8} {:>7} {:>6} {:>22}",
        "model", "injected", "ITR%", "MayITR%", "Undet%", "spc%", "active-recovery-sound"
    );
    for (kind, injected, counts, sound) in models {
        let n = counts.iter().sum::<u64>().max(1) as f64;
        let frac = |pred: &dyn Fn(Outcome) -> bool| {
            Outcome::ALL
                .iter()
                .enumerate()
                .filter(|(_, o)| pred(**o))
                .map(|(i, _)| counts[i])
                .sum::<u64>() as f64
                * 100.0
                / n
        };
        let itr = frac(&|o: Outcome| o.itr_detected());
        let may = frac(&|o: Outcome| matches!(o, Outcome::MayItrSdc | Outcome::MayItrMask));
        let undet = frac(&|o: Outcome| {
            matches!(o, Outcome::UndetSdc | Outcome::UndetMask | Outcome::UndetWdog)
        });
        let spc = frac(&|o: Outcome| o == Outcome::SpcSdc);
        let _ = writeln!(
            text,
            "{kind:>14} {injected:>9} {itr:>6.1}% {may:>7.1}% {undet:>6.1}% {spc:>5.1}% {:>22}",
            if *sound { "yes" } else { "no (re-strikes)" }
        );
    }
    let _ = writeln!(
        text,
        "\nModels marked unsound re-strike during the retry window, so Active-mode\n\
         retry cannot disambiguate the faulty instance; campaigns classify them in\n\
         Passive mode and the fuzz oracle applies only the always-sound checks."
    );

    let _ = writeln!(text, "\n=== New workload families (Table-1-style characterization) ===");
    let _ = writeln!(
        text,
        "{:>14} {:>10} {:>8} {:>14} {:>8} {:>12}",
        "kernel", "output", "instrs", "static-traces", "top10%", "within-4096%"
    );
    for (name, output, expected, instrs, traces, top10, within) in workloads {
        assert_eq!(output, expected, "{name}: self-check output mismatch");
        let _ = writeln!(
            text,
            "{name:>14} {output:>10} {instrs:>8} {traces:>14} {top10:>7.1}% {within:>11.1}%"
        );
    }
    let _ = writeln!(
        text,
        "\nAll three families repeat their hot traces at short distances, so ITR's\n\
         repetition assumption (Table 1) holds beyond the paper's SPEC2K suite."
    );

    Emitted {
        txt_name: "env.txt",
        text,
        csv: Some(Csv {
            name: "env.csv",
            header: "policy,sched,quantum,switches,instrs,det_loss_pct,rec_loss_pct,\
                     flush_unref_instrs,spc_violations,cold_miss_pct,warm_miss_pct"
                .to_string(),
            rows,
        }),
    }
}

/// Registers the three compute families and the emit job.
pub fn register(reg: &mut Registry, scale: &Scale, out: &Path) {
    let s = scale.clone();
    reg.add(JobSpec::new("env-interleave", &[], move |_| {
        // Recorded once here, shared by every schedule-point shard.
        let programs = record_program_set(&ENV_PROGRAMS, ENV_RECORD_INSTRS);
        let budget = interleave_budget(&s);
        schedule_points(&s)
            .into_iter()
            .enumerate()
            .map(|(i, (policy, preemption))| {
                let programs = programs.clone();
                ShardSpec::new(i as u32, (0, budget), move |_| {
                    let cfg = ScenarioConfig {
                        itr: ItrConfig::paper_default(),
                        policy,
                        preemption,
                        dispatch_budget: budget,
                        spc: true,
                    };
                    let r = run_scenario(&programs, &cfg);
                    let bucket_rate = |pred: &dyn Fn(u64) -> bool| {
                        let (mut probes, mut misses) = (0u64, 0u64);
                        for b in r.warmup.iter().filter(|b| pred(b.lo)) {
                            probes += b.probes;
                            misses += b.misses;
                        }
                        misses as f64 * 100.0 / probes.max(1) as f64
                    };
                    data_payload(obj(vec![
                        ("policy", Value::Str(policy.label().into())),
                        ("sched", Value::Str(preemption.label().into())),
                        ("quantum", Value::UInt(quantum_of(&preemption))),
                        ("switches", Value::UInt(r.switches)),
                        ("instrs", Value::UInt(r.total.instrs_committed)),
                        ("det_loss_instrs", Value::UInt(r.detection_loss_instrs())),
                        ("det_pct", Value::Float(r.detection_loss_pct())),
                        ("rec_pct", Value::Float(r.recovery_loss_pct())),
                        ("flush_unref_instrs", Value::UInt(r.flush.unreferenced_instrs)),
                        ("spc_checks", Value::UInt(r.spc_checks)),
                        ("spc_violations", Value::UInt(r.spc_violations)),
                        ("cold_miss_pct", Value::Float(bucket_rate(&|lo| lo == 0))),
                        ("warm_miss_pct", Value::Float(bucket_rate(&|lo| lo >= 64))),
                        (
                            "per_program",
                            Value::Array(
                                r.per_program
                                    .iter()
                                    .map(|p| {
                                        obj(vec![
                                            ("name", Value::Str(p.name.clone())),
                                            ("dispatches", Value::UInt(p.dispatches)),
                                            ("instrs", Value::UInt(p.stats.instrs_committed)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ]))
                })
            })
            .collect()
    }));

    let s = scale.clone();
    reg.add(JobSpec::new("env-faultmodels", &[], move |_| {
        let cfg = model_cfg(&s);
        ModelKind::ALL
            .iter()
            .enumerate()
            .map(|(i, &kind)| {
                let s = s.clone();
                let cfg = cfg.clone();
                ShardSpec::new(i as u32, (0, u64::from(cfg.faults)), move |ctx| {
                    let profile = profiles::by_name("vortex").expect("vortex profile");
                    let program = generate_mimic_sized(profile, s.seed, MODEL_PROGRAM_INSTRS);
                    let plan = ModelPlan::new(&program, kind, &cfg);
                    let sound = plan.models().iter().all(FaultModel::active_recovery_sound);
                    let shard = plan.run_range(&program, &cfg, 0, cfg.faults, &|| ctx.cancelled());
                    let mut counts = [0u64; 10];
                    for rec in &shard.records {
                        let oi = Outcome::ALL
                            .iter()
                            .position(|o| *o == rec.outcome)
                            .expect("known outcome");
                        counts[oi] += 1;
                    }
                    data_payload(obj(vec![
                        ("kind", Value::Str(kind.label().into())),
                        ("injected", Value::UInt(shard.records.len() as u64)),
                        ("sound", Value::Bool(sound)),
                        ("counts", Value::Array(counts.iter().map(|&c| Value::UInt(c)).collect())),
                    ]))
                })
            })
            .collect()
    }));

    let s = scale.clone();
    reg.add(JobSpec::new("env-workloads", &[], move |_| {
        NEW_WORKLOADS
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let s = s.clone();
                ShardSpec::new(i as u32, (0, s.instrs), move |_| {
                    let (program, expected) = assembled(name);
                    let mut sim = FuncSim::new(&program);
                    sim.run(1_000_000);
                    let stats = StreamStats::collect(TraceStream::new(&program, s.instrs));
                    data_payload(obj(vec![
                        ("name", Value::Str((*name).into())),
                        ("output", Value::Str(sim.output().into())),
                        ("expected", Value::Str(expected.into())),
                        ("instrs", Value::UInt(sim.instr_count())),
                        ("static_traces", Value::UInt(stats.static_traces() as u64)),
                        ("top10_pct", Value::Float(stats.top_n_share_pct(10))),
                        ("within_4096_pct", Value::Float(stats.within_distance_pct(4096))),
                    ]))
                })
            })
            .collect()
    }));

    let dir = out.to_path_buf();
    let s = scale.clone();
    reg.add(JobSpec::single(
        "env-report",
        &["env-interleave", "env-faultmodels", "env-workloads"],
        move |_, board| {
            let interleave: Vec<InterleaveRow> = board
                .expect("env-interleave")
                .data()
                .map(|d| InterleaveRow {
                    policy: get_str(d, "policy").to_string(),
                    sched: get_str(d, "sched").to_string(),
                    quantum: get_u64(d, "quantum"),
                    switches: get_u64(d, "switches"),
                    instrs: get_u64(d, "instrs"),
                    det_pct: super::get_f64(d, "det_pct"),
                    rec_pct: super::get_f64(d, "rec_pct"),
                    flush_unref_instrs: get_u64(d, "flush_unref_instrs"),
                    spc_violations: get_u64(d, "spc_violations"),
                    cold_miss_pct: super::get_f64(d, "cold_miss_pct"),
                    warm_miss_pct: super::get_f64(d, "warm_miss_pct"),
                })
                .collect();
            let models: Vec<(String, u64, [u64; 10], bool)> = board
                .expect("env-faultmodels")
                .data()
                .map(|d| {
                    let mut counts = [0u64; 10];
                    let arr = d.get("counts").and_then(Value::as_array).expect("counts");
                    for (e, c) in counts.iter_mut().zip(arr) {
                        *e = c.as_u64().expect("count");
                    }
                    (
                        get_str(d, "kind").to_string(),
                        get_u64(d, "injected"),
                        counts,
                        super::get_bool(d, "sound"),
                    )
                })
                .collect();
            let workloads: Vec<(String, String, String, u64, u64, f64, f64)> = board
                .expect("env-workloads")
                .data()
                .map(|d| {
                    (
                        get_str(d, "name").to_string(),
                        get_str(d, "output").to_string(),
                        get_str(d, "expected").to_string(),
                        get_u64(d, "instrs"),
                        get_u64(d, "static_traces"),
                        super::get_f64(d, "top10_pct"),
                        super::get_f64(d, "within_4096_pct"),
                    )
                })
                .collect();
            emit_payload(
                &dir,
                &render_env(
                    &interleave,
                    &models,
                    &workloads,
                    interleave_budget(&s),
                    model_cfg(&s).faults,
                ),
            )
        },
    ));
}
