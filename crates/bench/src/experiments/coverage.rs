//! Figures 6–7: detection/recovery coverage loss across the ITR-cache
//! design space, one compute shard per benchmark (the stream is
//! collected once and replayed into all 18 configurations plus the
//! 1024×2-way summary point).

use super::{
    data_payload, emit_payload, get_arr, get_bool, get_f64, get_str, obj, Csv, Emitted, Scale,
};
use itr_core::{fan_out_records, Associativity, CoverageModel, ItrCacheConfig, TraceRecord};
use itr_harness::{JobSpec, Registry, ShardSpec};
use itr_stats::json::Value;
use itr_workloads::{profiles, SpecProfile};
use std::fmt::Write as _;
use std::path::Path;

/// Cache sizes the figures sweep.
pub const SIZES: [u32; 3] = [256, 512, 1024];

/// One benchmark's coverage results.
#[derive(Debug, Clone)]
pub struct CoverageUnit {
    /// Benchmark name.
    pub name: String,
    /// Member of the Figures 6–8 subset (gets the full sweep).
    pub in_figure_set: bool,
    /// `sweep[assoc][size] = (detection_loss_pct, recovery_loss_pct)`,
    /// indices following [`Associativity::SWEEP`] × [`SIZES`].
    pub sweep: Vec<Vec<(f64, f64)>>,
    /// 1024-signature 2-way summary point (all 16 benchmarks).
    pub det2: f64,
    /// Recovery loss at the summary point.
    pub rec2: f64,
}

impl CoverageUnit {
    /// Journal-crossing encoding.
    pub fn to_value(&self) -> Value {
        obj(vec![
            ("name", Value::Str(self.name.clone())),
            ("in_figure_set", Value::Bool(self.in_figure_set)),
            (
                "sweep",
                Value::Array(
                    self.sweep
                        .iter()
                        .map(|per_size| {
                            Value::Array(
                                per_size
                                    .iter()
                                    .map(|&(d, r)| {
                                        obj(vec![
                                            ("det", Value::Float(d)),
                                            ("rec", Value::Float(r)),
                                        ])
                                    })
                                    .collect(),
                            )
                        })
                        .collect(),
                ),
            ),
            ("det2", Value::Float(self.det2)),
            ("rec2", Value::Float(self.rec2)),
        ])
    }

    /// Decoding.
    pub fn from_value(v: &Value) -> CoverageUnit {
        CoverageUnit {
            name: get_str(v, "name").to_string(),
            in_figure_set: get_bool(v, "in_figure_set"),
            sweep: get_arr(v, "sweep")
                .iter()
                .map(|per_size| {
                    per_size
                        .as_array()
                        .expect("sweep row")
                        .iter()
                        .map(|p| (get_f64(p, "det"), get_f64(p, "rec")))
                        .collect()
                })
                .collect(),
            det2: get_f64(v, "det2"),
            rec2: get_f64(v, "rec2"),
        }
    }
}

/// Measures one benchmark — the compute shard body, also used serially
/// by the `fig6_7_coverage` binary. The stream is collected once and
/// fanned out to every configuration's [`CoverageModel`] in a single
/// pass ([`fan_out_records`]); each model observes the identical
/// record sequence it would see in a dedicated run.
pub fn coverage_unit(
    profile: SpecProfile,
    seed: u64,
    instrs: u64,
    from_programs: bool,
) -> CoverageUnit {
    let in_figure_set = profiles::coverage_figure_set().iter().any(|p| p.name == profile.name);
    let stream: Vec<TraceRecord> =
        crate::stream_with(profile, seed, instrs, from_programs).collect();
    let mut models: Vec<CoverageModel> = Vec::new();
    if in_figure_set {
        for assoc in Associativity::SWEEP {
            for &size in &SIZES {
                models.push(CoverageModel::new(ItrCacheConfig::new(size, assoc)));
            }
        }
    }
    models.push(CoverageModel::new(ItrCacheConfig::new(1024, Associativity::Ways(2))));
    fan_out_records(&stream, &mut models);

    let mut reports = models.iter().map(CoverageModel::report);
    let mut sweep = Vec::new();
    if in_figure_set {
        for _ in Associativity::SWEEP {
            let per_size = SIZES
                .iter()
                .map(|_| {
                    let r = reports.next().expect("sweep model");
                    (r.detection_loss_pct(), r.recovery_loss_pct())
                })
                .collect();
            sweep.push(per_size);
        }
    }
    let r = reports.next().expect("summary model");
    CoverageUnit {
        name: profile.name.to_string(),
        in_figure_set,
        sweep,
        det2: r.detection_loss_pct(),
        rec2: r.recovery_loss_pct(),
    }
}

/// Renders Figures 6–7 exactly as the `fig6_7_coverage` binary prints
/// them.
pub fn render_fig6_7(units: &[CoverageUnit]) -> Emitted {
    let mut text = String::new();
    let mut rows = Vec::new();

    let _ = writeln!(text, "=== Figures 6/7: coverage loss (% of all dynamic instructions) ===");
    let _ = writeln!(text, "(rows: benchmark × associativity; paired columns per cache size)\n");
    let _ = write!(text, "{:<10} {:<7}", "bench", "assoc");
    for s in SIZES {
        let _ = write!(text, "  {:>8} {:>8}", format!("det{s}"), format!("rec{s}"));
    }
    let _ = writeln!(text);

    for u in units.iter().filter(|u| u.in_figure_set) {
        for (ai, assoc) in Associativity::SWEEP.into_iter().enumerate() {
            let _ = write!(text, "{:<10} {:<7}", u.name, assoc.label());
            for (si, &size) in SIZES.iter().enumerate() {
                let (det, rec) = u.sweep[ai][si];
                let _ = write!(text, "  {det:>7.2}% {rec:>7.2}%");
                rows.push(format!("{},{},{size},{det:.4},{rec:.4}", u.name, assoc.label()));
            }
            let _ = writeln!(text);
        }
    }

    let det: Vec<(&str, f64)> = units.iter().map(|u| (u.name.as_str(), u.det2)).collect();
    let rec: Vec<(&str, f64)> = units.iter().map(|u| (u.name.as_str(), u.rec2)).collect();
    fn avg(v: &[(&str, f64)]) -> f64 {
        v.iter().map(|(_, x)| x).sum::<f64>() / v.len() as f64
    }
    fn max<'a>(v: &[(&'a str, f64)]) -> (&'a str, f64) {
        v.iter().fold(("", 0.0f64), |m, &(n, x)| if x > m.1 { (n, x) } else { m })
    }
    let _ = writeln!(text, "\n2-way, 1024 signatures across all 16 benchmarks:");
    let _ = writeln!(
        text,
        "  detection loss: avg {:.2}% (paper: 1.3%), max {:.2}% on {} (paper: 8.2% on vortex)",
        avg(&det),
        max(&det).1,
        max(&det).0
    );
    let _ = writeln!(
        text,
        "  recovery  loss: avg {:.2}% (paper: 2.5%), max {:.2}% on {} (paper: 15% on vortex)",
        avg(&rec),
        max(&rec).1,
        max(&rec).0
    );
    Emitted {
        txt_name: "fig6_7.txt",
        text,
        csv: Some(Csv {
            name: "fig6_7_coverage.csv",
            header: "bench,assoc,entries,detection_loss_pct,recovery_loss_pct".to_string(),
            rows,
        }),
    }
}

/// Registers the compute job and its emit job.
pub fn register(reg: &mut Registry, scale: &Scale, out: &Path) {
    let s = scale.clone();
    reg.add(JobSpec::new("coverage", &[], move |_| {
        profiles::all()
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                let s = s.clone();
                ShardSpec::new(i as u32, (i as u64, i as u64 + 1), move |_| {
                    data_payload(coverage_unit(p, s.seed, s.instrs, s.from_programs).to_value())
                })
            })
            .collect()
    }));
    let dir = out.to_path_buf();
    reg.add(JobSpec::single("fig6_7", &["coverage"], move |_, board| {
        let units: Vec<CoverageUnit> =
            board.expect("coverage").data().map(CoverageUnit::from_value).collect();
        emit_payload(&dir, &render_fig6_7(&units))
    }));
}
