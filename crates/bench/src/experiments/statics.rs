//! Leaf jobs with no simulation behind them: Table 2 (decode signals)
//! and the §5 area comparison. Pure functions of the implementation, so
//! each is a single emit shard.

use super::Emitted;
use itr_harness::{JobSpec, Registry};
use itr_isa::{SIGNAL_FIELDS, TOTAL_SIGNAL_BITS};
use itr_power::{itr_cache_area_cm2, AreaComparison};
use std::fmt::Write as _;
use std::path::Path;

/// Renders Table 2 exactly as the `table2_signals` binary prints it.
pub fn render_table2() -> Emitted {
    let mut text = String::new();
    let _ = writeln!(text, "=== Table 2: list of decode signals ===");
    let _ = writeln!(text, "{:<10} {:<42} {:>5}", "field", "description", "width");
    let mut total = 0;
    for f in SIGNAL_FIELDS {
        let _ = writeln!(text, "{:<10} {:<42} {:>5}", f.name, f.description, f.width);
        total += f.width;
    }
    let _ = writeln!(text, "{:<10} {:<42} {:>5}", "total", "", total);
    assert_eq!(total, TOTAL_SIGNAL_BITS);
    Emitted { txt_name: "table2_signals.txt", text, csv: None }
}

/// Renders the §5 area comparison exactly as the `table_area` binary
/// prints it.
pub fn render_area() -> Emitted {
    let cmp = AreaComparison::paper_itr_cache();
    let mut text = String::new();
    let _ = writeln!(text, "=== §5 area comparison (S/390 G5 die photo) ===");
    let _ = writeln!(
        text,
        "I-unit (fetch + decode):          {:>6.2} cm²  (paper: 2.1 cm²)",
        cmp.iunit_cm2
    );
    let _ = writeln!(
        text,
        "ITR cache (1024 × 64-bit, 2-way): {:>6.3} cm²  (paper: ~0.3 cm² BTB-like structure)",
        cmp.itr_cache_cm2
    );
    let _ = writeln!(text, "Ratio: {:.1}× smaller (paper: \"about one seventh\")", cmp.ratio());
    let _ = writeln!(text, "\nSensitivity:");
    for (entries, bits) in [(256u32, 64u32), (512, 64), (1024, 64), (2048, 64)] {
        let _ = writeln!(
            text,
            "  {entries:>5} signatures × {bits} bits: {:>6.3} cm² ({:.1}× smaller than the I-unit)",
            itr_cache_area_cm2(entries, bits),
            cmp.iunit_cm2 / itr_cache_area_cm2(entries, bits)
        );
    }
    Emitted { txt_name: "table_area.txt", text, csv: None }
}

/// Registers the two leaf jobs.
pub fn register(reg: &mut Registry, out: &Path) {
    let dir = out.to_path_buf();
    reg.add(JobSpec::single("table2", &[], move |_, _| {
        super::emit_payload(&dir, &render_table2())
    }));
    let dir = out.to_path_buf();
    reg.add(JobSpec::single("area", &[], move |_, _| super::emit_payload(&dir, &render_area())));
}
