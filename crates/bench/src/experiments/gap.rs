//! The static↔dynamic coverage-gap loop as a harness job family.
//!
//! Three compute families feed one emit job:
//!
//! * `gap-suite` — the workload suite splits round-robin across fixed
//!   shards; each workload's own bounded execution is diffed against its
//!   static CFG and trace universes (`itr_analyze::gap`), yielding
//!   never-formed traces, uncovered edges and unentered loops per
//!   trace-length config;
//! * `gap-adversarial` — the alias/set-conflict analysis turned
//!   offensive: generated workloads that maximize ITR-cache set
//!   conflicts (every trace start indexes one set, overflowing its
//!   ways) and dangerous content-alias groups (permuted twin blocks
//!   whose XOR fold collides), run through the fault campaign against a
//!   layout-identical benign control. The *only* difference between the
//!   benign and set-conflict programs is block padding — same
//!   instruction stream, different set mapping — so the detection-
//!   coverage delta isolates cache thrash;
//! * `gap-ab` — the pinned directed-vs-blind races: for each fixed-seed
//!   config the blind engine runs the budget and the analysis-directed
//!   engine must reach 95% of its final gap-closure count in no more
//!   oracle executions (the `itr-fuzz gap-ab` contract).
//!
//! The emit job renders `gap.txt` / `gap.csv` in suite order; both are
//! byte-identical across `--jobs` counts like every other artifact.

use super::{
    data_payload, emit_payload, get_bool, get_f64, get_str, get_u64, obj, Csv, Emitted, Scale,
};
use itr_analyze::{gap_report, GapObservations};
use itr_core::{Associativity, ItrCacheConfig, ItrConfig, ItrMode};
use itr_faults::{run_campaign, CampaignConfig};
use itr_fuzz::{FuzzConfig, Fuzzer};
use itr_harness::{JobSpec, Registry, ShardSpec};
use itr_isa::asm::assemble;
use itr_isa::Program;
use itr_stats::json::Value;
use itr_workloads::suite;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Fixed shard count of the suite diff — part of the decomposition.
pub const GAP_SHARDS: u32 = 4;

/// Mimic dynamic-instruction target, pinned to the analyze family so
/// the same suite is being diffed.
pub const GAP_MIMIC_INSTRS: u64 = 30_000;

/// Per-workload execution budget of the dynamic observation pass.
pub const GAP_EXEC_BUDGET: u64 = 60_000;

/// Trace-length configs diffed per workload (the paper's sweep).
pub const GAP_LENS: [u32; 3] = [4, 8, 16];

/// Pinned `(seed, iters)` configs of the directed-vs-blind race. Every
/// config must pass; CI asserts the `all_pass` bit in `gap.txt`.
pub const GAP_AB_CONFIGS: [(u64, u64); 3] = [(2, 150), (5, 150), (7, 150)];

/// Adversarial cache geometry the generator is tuned against: 64
/// entries, 2-way — 32 sets, so trace starts 32 words apart collide.
const ADV_CACHE_ENTRIES: u32 = 64;
/// Conflicting trace-start blocks chained per loop (> ways, so the set
/// thrashes; benign layout spreads the same blocks across sets).
const ADV_BLOCKS: u32 = 6;
/// Loop iterations — sized so the fault-injection window of decoded
/// instructions is fully inside the loop.
const ADV_ITERS: u32 = 2000;
/// Block stride in words under the conflicting layout (= the set
/// count, so every block start indexes set 0).
const ADV_STRIDE: u32 = ADV_CACHE_ENTRIES / 2;
/// Twin-block pairs of the content-alias adversary.
const ALIAS_PAIRS: u32 = 8;

fn adv_cache() -> ItrCacheConfig {
    ItrCacheConfig::new(ADV_CACHE_ENTRIES, Associativity::Ways(2))
}

/// The set-conflict adversary (and its benign control): `ADV_BLOCKS`
/// blocks chained by jumps inside a counted loop, each block one trace.
/// With `conflict`, blocks are padded to the set-count stride so every
/// trace start indexes the same set and the ways overflow; otherwise
/// the stride is one word longer and the same instruction stream spreads
/// across sets. Identical decode stream either way — padding after an
/// unconditional jump never executes.
fn conflict_source(conflict: bool) -> String {
    let stride = if conflict { ADV_STRIDE } else { ADV_STRIDE + 1 };
    let mut s = String::from("main:\n");
    s.push_str(&format!("    li r20, {ADV_ITERS}\n"));
    s.push_str("    li r8, 0\n    li r9, 0\n    j b0\n");
    // Header is 4 instructions; pad so b0 lands exactly on the stride.
    for _ in 4..stride {
        s.push_str("    nop\n");
    }
    for b in 0..ADV_BLOCKS {
        s.push_str(&format!("b{b}:\n"));
        let used = if b + 1 < ADV_BLOCKS {
            s.push_str("    addi r8, r8, 1\n    xor r9, r9, r8\n    add r10, r9, r8\n");
            s.push_str(&format!("    j b{}\n", b + 1));
            4
        } else {
            s.push_str("    xor r9, r9, r8\n    addi r20, r20, -1\n");
            s.push_str("    bgtz r20, b0\n");
            s.push_str("    move r4, r9\n    trap 1\n    halt\n");
            6
        };
        for _ in used..stride {
            s.push_str("    nop\n");
        }
    }
    s
}

/// The content-alias adversary: `ALIAS_PAIRS` twin-block pairs whose
/// two leading instructions are swapped between twins. Every block ends
/// with the same-shaped always-taken branch at the same intra-block
/// offset, so twin traces carry identical word *multisets* in different
/// order — the XOR fold cannot tell them apart (a content alias group
/// per pair, the exact collision class `itr-analyze` flags as a missed
/// detection opportunity).
fn alias_source() -> String {
    let mut s = String::from("main:\n");
    s.push_str(&format!("    li r20, {ADV_ITERS}\n"));
    s.push_str("    li r8, 0\n    li r9, 0\n    j p0\n");
    for p in 0..ALIAS_PAIRS {
        // Twin A: addi then xor; twin B: xor then addi — the same two
        // words in swapped order. Each pair gets its own immediate so
        // every pair is a *distinct* content-alias group rather than one
        // merged collision class.
        s.push_str(&format!("p{p}:\n"));
        s.push_str(&format!("    addi r8, r8, {}\n    xor r9, r9, r8\n", p + 1));
        s.push_str(&format!("    beq r0, r0, q{p}\n"));
        s.push_str(&format!("q{p}:\n"));
        s.push_str(&format!("    xor r9, r9, r8\n    addi r8, r8, {}\n", p + 1));
        if p + 1 < ALIAS_PAIRS {
            s.push_str(&format!("    beq r0, r0, p{}\n", p + 1));
        } else {
            s.push_str("    beq r0, r0, tail\n");
        }
    }
    s.push_str("tail:\n    addi r20, r20, -1\n    bgtz r20, p0\n");
    s.push_str("    move r4, r9\n    trap 1\n    halt\n");
    s
}

/// Dynamically observed trace starts (length-16 config) that overflow
/// their ITR-cache set under `cache` — the offensive metric the
/// conflict adversary maximizes.
fn overfull_sets(program: &Program, cache: &ItrCacheConfig) -> (u64, u64) {
    let obs = GapObservations::from_program(program, GAP_EXEC_BUDGET, &[16]);
    let mut per_set: BTreeMap<u32, u32> = BTreeMap::new();
    if let Some(starts) = obs.trace_starts.get(&16) {
        for &pc in starts {
            *per_set.entry(cache.set_index(pc)).or_insert(0) += 1;
        }
    }
    let ways = cache.ways();
    let overfull = per_set.values().filter(|&&n| n > ways).count() as u64;
    let worst = per_set.values().copied().max().unwrap_or(0) as u64;
    (overfull, worst)
}

/// One adversarial-campaign shard: assemble, measure the set pressure,
/// run the fault campaign under the adversary-tuned cache.
fn adversarial_value(scale: &Scale, index: u64, name: &str, source: &str) -> Value {
    let program = assemble(source).unwrap_or_else(|e| panic!("{name}: {e}"));
    let cache = adv_cache();
    let (overfull, worst_set) = overfull_sets(&program, &cache);
    let cfg = CampaignConfig {
        faults: scale.faults,
        window_cycles: scale.window_cycles,
        seed: scale.seed ^ 0x3000 ^ index,
        threads: 1,
        itr: ItrConfig { cache, mode: ItrMode::Passive, ..ItrConfig::paper_default() },
        ..CampaignConfig::default()
    };
    let result = run_campaign(&program, &cfg);
    obj(vec![
        ("index", Value::UInt(index)),
        ("name", Value::Str(name.to_string())),
        ("text_instrs", Value::UInt(program.text().len() as u64)),
        ("overfull_sets", Value::UInt(overfull)),
        ("worst_set_traces", Value::UInt(worst_set)),
        ("faults", Value::UInt(result.records.len() as u64)),
        ("itr_detected", Value::Float(result.itr_detected_fraction())),
    ])
}

/// One pinned directed-vs-blind race (the `itr-fuzz gap-ab` contract,
/// inlined so the repro artifact carries the evidence).
fn gap_ab_value(seed: u64, iters: u64) -> Value {
    let quick = FuzzConfig { skip_seeding: true, ..FuzzConfig::quick(seed, iters) };
    let mut base = Fuzzer::new(FuzzConfig { directed: false, ..quick.clone() });
    base.seed(&|| false);
    let mut trajectory = vec![(base.execs(), base.gap_closures())];
    for _ in 0..iters {
        base.step();
        trajectory.push((base.execs(), base.gap_closures()));
    }
    let target = (base.gap_closures() * 95).div_ceil(100);
    let base_execs =
        trajectory.iter().find(|&&(_, c)| c >= target).map_or_else(|| base.execs(), |&(e, _)| e);

    let mut dir = Fuzzer::new(FuzzConfig { directed: true, ..quick });
    dir.seed(&|| false);
    while dir.gap_closures() < target && dir.iterations() < iters * 4 {
        dir.step();
    }
    let pass = target > 0 && dir.gap_closures() >= target && dir.execs() <= base_execs;
    obj(vec![
        ("seed", Value::UInt(seed)),
        ("iters", Value::UInt(iters)),
        ("blind_closures", Value::UInt(base.gap_closures())),
        ("target", Value::UInt(target)),
        ("blind_execs", Value::UInt(base_execs)),
        ("directed_closures", Value::UInt(dir.gap_closures())),
        ("directed_execs", Value::UInt(dir.execs())),
        ("pass", Value::Bool(pass)),
    ])
}

/// Renders `gap.txt` / `gap.csv`; shard payloads merge back into suite
/// order via the recorded indices.
pub fn render_gap(suite: &[Value], adversarial: &[Value], ab: &[Value]) -> Emitted {
    let mut units: Vec<&Value> = suite
        .iter()
        .filter_map(|v| v.get("workloads").and_then(Value::as_array))
        .flatten()
        .collect();
    units.sort_by_key(|v| get_u64(v, "index"));

    let mut text = String::new();
    let _ = writeln!(text, "=== itr-gap: static\u{2194}dynamic coverage gaps per workload ===");
    let _ = writeln!(
        text,
        "{:<10} {:>6} {:>7} {:>7} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "bench",
        "edges",
        "covered",
        "open",
        "loops",
        "enter",
        "never4",
        "never8",
        "never16",
        "closed"
    );
    let mut rows = Vec::new();
    let mut total_open = 0u64;
    for v in &units {
        let name = get_str(v, "name");
        let nev = v.get("never_formed").and_then(Value::as_array).unwrap_or(&[]);
        let n = |i: usize| nev.get(i).and_then(Value::as_u64).unwrap_or(0);
        let open = get_u64(v, "open_edge_gaps");
        let closed = get_bool(v, "closed");
        total_open += get_u64(v, "open_gaps");
        let _ = writeln!(
            text,
            "{name:<10} {:>6} {:>7} {:>7} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
            get_u64(v, "static_edges"),
            get_u64(v, "covered_edges"),
            open,
            get_u64(v, "loops"),
            get_u64(v, "loops_entered"),
            n(0),
            n(1),
            n(2),
            if closed { "yes" } else { "no" },
        );
        rows.push(format!(
            "{name},{},{},{},{},{},{},{},{},{},{}",
            get_u64(v, "static_edges"),
            get_u64(v, "covered_edges"),
            get_u64(v, "static_only"),
            open,
            get_u64(v, "loops"),
            get_u64(v, "loops_entered"),
            n(0),
            n(1),
            n(2),
            closed,
        ));
    }
    let _ = writeln!(
        text,
        "\n{total_open} open gap(s) across the suite under its own bounded execution\n\
         (uncovered reachable edges + unentered loops + never-formed traces;\n\
         unreachable-block edges are excluded — no execution can cover them)."
    );

    // Adversarial alias/set-conflict campaigns vs the benign control.
    let mut adv: Vec<&Value> = adversarial.iter().collect();
    adv.sort_by_key(|v| get_u64(v, "index"));
    let _ = writeln!(
        text,
        "\n=== adversarial alias/set-conflict workloads (cache {}x{}-way) ===",
        ADV_CACHE_ENTRIES, 2
    );
    let _ = writeln!(
        text,
        "{:<14} {:>6} {:>9} {:>9} {:>7} {:>9} {:>11}",
        "workload", "text", "overfull", "worst-set", "faults", "detected", "degradation"
    );
    let benign = adv.first().map_or(0.0, |v| get_f64(v, "itr_detected"));
    let mut max_degradation = 0.0f64;
    for v in &adv {
        let det = get_f64(v, "itr_detected");
        let degradation = benign - det;
        if get_u64(v, "index") > 0 {
            max_degradation = max_degradation.max(degradation);
        }
        let _ = writeln!(
            text,
            "{:<14} {:>6} {:>9} {:>9} {:>7} {:>8.1}% {:>10.1}%",
            get_str(v, "name"),
            get_u64(v, "text_instrs"),
            get_u64(v, "overfull_sets"),
            get_u64(v, "worst_set_traces"),
            get_u64(v, "faults"),
            det * 100.0,
            degradation * 100.0,
        );
    }
    let _ = writeln!(
        text,
        "\nmax detection-coverage degradation vs benign control: {:.1}% \
         (adversarial_degradation_ok={})",
        max_degradation * 100.0,
        max_degradation > 0.0,
    );

    // Pinned directed-vs-blind races.
    let mut races: Vec<&Value> = ab.iter().collect();
    races.sort_by_key(|v| (get_u64(v, "seed"), get_u64(v, "iters")));
    let _ = writeln!(text, "\n=== directed vs blind gap closure (95% race, fewer execs wins) ===");
    let _ = writeln!(
        text,
        "{:>6} {:>6} {:>7} {:>11} {:>14} {:>6}",
        "seed", "iters", "target", "blind-execs", "directed-execs", "pass"
    );
    let mut all_pass = true;
    for v in &races {
        let pass = get_bool(v, "pass");
        all_pass &= pass;
        let _ = writeln!(
            text,
            "{:>6} {:>6} {:>7} {:>11} {:>14} {:>6}",
            get_u64(v, "seed"),
            get_u64(v, "iters"),
            get_u64(v, "target"),
            get_u64(v, "blind_execs"),
            get_u64(v, "directed_execs"),
            if pass { "yes" } else { "NO" },
        );
    }
    let _ = writeln!(text, "\ngap_ab_all_pass={all_pass}");

    Emitted {
        txt_name: "gap.txt",
        text,
        csv: Some(Csv {
            name: "gap.csv",
            header: "bench,static_edges,covered_edges,static_only,open_edge_gaps,\
                     loops,loops_entered,never4,never8,never16,closed"
                .to_string(),
            rows,
        }),
    }
}

/// Registers the three compute families and the emit job.
pub fn register(reg: &mut Registry, scale: &Scale, out: &Path) {
    let seed = scale.seed;
    reg.add(JobSpec::new("gap-suite", &[], move |_| {
        let total = suite::everything(seed, GAP_MIMIC_INSTRS).len() as u64;
        (0..GAP_SHARDS)
            .map(|shard| {
                ShardSpec::new(shard, (shard as u64, total), move |ctx| {
                    let workloads = suite::everything(seed, GAP_MIMIC_INSTRS);
                    let mut values = Vec::new();
                    for (index, w) in workloads.iter().enumerate() {
                        if index as u32 % GAP_SHARDS != shard || ctx.cancelled() {
                            continue;
                        }
                        let obs =
                            GapObservations::from_program(&w.program, GAP_EXEC_BUDGET, &GAP_LENS);
                        let report = gap_report(&w.name, &w.program, &GAP_LENS, &obs);
                        values.push(obj(vec![
                            ("index", Value::UInt(index as u64)),
                            ("name", Value::Str(report.name.clone())),
                            ("static_edges", Value::UInt(report.static_edges)),
                            ("covered_edges", Value::UInt(report.covered_edges)),
                            ("static_only", Value::UInt(report.static_only_edges)),
                            ("open_edge_gaps", Value::UInt(report.uncovered.len() as u64)),
                            ("loops", Value::UInt(report.loops_total)),
                            ("loops_entered", Value::UInt(report.loops_entered)),
                            (
                                "never_formed",
                                Value::Array(
                                    report
                                        .lens
                                        .iter()
                                        .map(|l| Value::UInt(l.never_formed.len() as u64))
                                        .collect(),
                                ),
                            ),
                            ("open_gaps", Value::UInt(report.open_gaps())),
                            ("closed", Value::Bool(report.is_closed())),
                        ]));
                    }
                    data_payload(obj(vec![
                        ("shard", Value::UInt(shard as u64)),
                        ("workloads", Value::Array(values)),
                    ]))
                })
            })
            .collect()
    }));

    let s = scale.clone();
    reg.add(JobSpec::new("gap-adversarial", &[], move |_| {
        type AdversarySpec = (&'static str, fn() -> String);
        let specs: [AdversarySpec; 3] = [
            ("benign", || conflict_source(false)),
            ("set-conflict", || conflict_source(true)),
            ("content-alias", alias_source),
        ];
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (name, source))| {
                let s = s.clone();
                ShardSpec::new(i as u32, (i as u64, specs.len() as u64), move |_| {
                    data_payload(adversarial_value(&s, i as u64, name, &source()))
                })
            })
            .collect()
    }));

    reg.add(JobSpec::new("gap-ab", &[], move |_| {
        GAP_AB_CONFIGS
            .into_iter()
            .enumerate()
            .map(|(i, (seed, iters))| {
                ShardSpec::new(i as u32, (i as u64, GAP_AB_CONFIGS.len() as u64), move |_| {
                    data_payload(gap_ab_value(seed, iters))
                })
            })
            .collect()
    }));

    let dir = out.to_path_buf();
    reg.add(JobSpec::single(
        "gap",
        &["gap-suite", "gap-adversarial", "gap-ab"],
        move |_, board| {
            let suite: Vec<Value> = board.expect("gap-suite").data().cloned().collect();
            let adversarial: Vec<Value> = board.expect("gap-adversarial").data().cloned().collect();
            let ab: Vec<Value> = board.expect("gap-ab").data().cloned().collect();
            emit_payload(&dir, &render_gap(&suite, &adversarial, &ab))
        },
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adversarial_sources_assemble_and_halt() {
        for (name, src) in [
            ("benign", conflict_source(false)),
            ("conflict", conflict_source(true)),
            ("alias", alias_source()),
        ] {
            let p = assemble(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
            let mut sim = itr_sim::FuncSim::new(&p);
            let stop = sim.run(2_000_000);
            assert_eq!(stop, itr_sim::StopReason::Halted, "{name} must halt, got {stop:?}");
        }
    }

    #[test]
    fn conflict_layout_overflows_one_set_and_benign_does_not() {
        let cache = adv_cache();
        let conflict = assemble(&conflict_source(true)).expect("assembles");
        let benign = assemble(&conflict_source(false)).expect("assembles");
        let (over_c, worst_c) = overfull_sets(&conflict, &cache);
        let (over_b, _) = overfull_sets(&benign, &cache);
        assert!(over_c >= 1, "conflict layout must overflow a set");
        assert!(worst_c > u64::from(cache.ways()), "worst set exceeds the ways");
        assert_eq!(over_b, 0, "benign layout spreads across sets");
    }

    #[test]
    fn conflict_and_benign_share_the_instruction_stream() {
        // The layouts differ only in padding after unconditional jumps,
        // so the executed streams are identical — the degradation A/B
        // isolates the set mapping.
        let run = |src: &str| {
            let p = assemble(src).expect("assembles");
            let mut sim = itr_sim::FuncSim::new(&p);
            sim.run(2_000_000);
            sim.instr_count()
        };
        assert_eq!(run(&conflict_source(true)), run(&conflict_source(false)));
    }

    #[test]
    fn alias_adversary_carries_content_alias_twins() {
        // Twin blocks hold the same instruction words in swapped order;
        // their XOR folds collide while the content differs.
        let p = assemble(&alias_source()).expect("assembles");
        let a = itr_analyze::analyze_program(
            "alias",
            "adversarial",
            &p,
            &itr_analyze::AnalyzeConfig::default(),
        );
        let l16 = a.lens.iter().find(|l| l.max_len == 16).expect("len 16");
        assert!(
            l16.alias.content_groups >= u64::from(ALIAS_PAIRS) / 2,
            "expected content-alias groups, got {}",
            l16.alias.content_groups
        );
    }
}
