//! The `itr-analyze` static-analysis pass as a harness job family: the
//! workload suite splits round-robin across fixed shards, each shard
//! runs the full static stack (CFG, trace enumeration, aliasing, set
//! conflicts) with dynamic cross-validation, and the emit job renders
//! `analyze.txt` / `analyze.csv` in suite order.
//!
//! The analysis parameters are pinned to the `itr-analyze` binary's
//! defaults (mimic seed aside, which follows the scale) so the artifact
//! is directly comparable to `tests/golden_analyze.json` and to ad-hoc
//! binary runs.

use super::{data_payload, emit_payload, get_str, get_u64, obj, Csv, Emitted, Scale};
use itr_analyze::{analyze_program, AnalyzeConfig, WorkloadAnalysis};
use itr_harness::{JobSpec, Registry, ShardSpec};
use itr_stats::json::Value;
use itr_workloads::suite::{self, WorkloadKind};
use std::fmt::Write as _;
use std::path::Path;

/// Fixed shard count — part of the deterministic decomposition.
pub const ANALYZE_SHARDS: u32 = 4;

/// Mimic dynamic-instruction target, pinned to the `itr-analyze` binary
/// default so artifacts and the golden baseline stay comparable across
/// scales.
pub const ANALYZE_MIMIC_INSTRS: u64 = 30_000;

/// Dynamic verification budget, likewise pinned to the binary default.
pub const ANALYZE_VERIFY_BUDGET: u64 = 200_000;

/// One workload's analysis as a journal-crossing payload.
fn workload_value(index: usize, kind: &WorkloadKind, w: &WorkloadAnalysis) -> Value {
    let l16 = w.lens.iter().find(|l| l.max_len == 16);
    let dynamic = l16.and_then(|l| l.dynamic.as_ref());
    obj(vec![
        ("index", Value::UInt(index as u64)),
        ("name", Value::Str(w.name.clone())),
        (
            "kind",
            Value::Str(
                match kind {
                    WorkloadKind::Kernel => "kernel",
                    WorkloadKind::Mimic => "mimic",
                }
                .to_string(),
            ),
        ),
        ("text_instrs", Value::UInt(w.text_instrs)),
        ("cfg_blocks", Value::UInt(w.cfg_blocks)),
        ("cfg_edges", Value::UInt(w.cfg_edges)),
        ("loops", Value::UInt(w.loops)),
        ("unreachable", Value::UInt(w.unreachable_instrs)),
        (
            "static_traces",
            Value::Array(w.lens.iter().map(|l| Value::UInt(l.static_traces)).collect()),
        ),
        ("alias_groups", Value::UInt(l16.map_or(0, |l| l.alias.groups))),
        ("content_aliases", Value::UInt(l16.map_or(0, |l| l.alias.content_groups))),
        ("overfull_sets", Value::UInt(l16.map_or(0, |l| l.conflicts.overfull_sets))),
        ("dyn_checked", Value::UInt(dynamic.map_or(0, |d| d.checked))),
        ("dyn_matched", Value::UInt(dynamic.map_or(0, |d| d.matched))),
        ("violations", Value::UInt(w.violations())),
    ])
}

/// Renders the suite summary; shard payloads are merged back into suite
/// order via the recorded indices, so the artifact is stable for any
/// shard schedule.
pub fn render_analyze(shards: &[Value]) -> Emitted {
    let mut units: Vec<&Value> = shards
        .iter()
        .filter_map(|v| v.get("workloads").and_then(Value::as_array))
        .flatten()
        .collect();
    units.sort_by_key(|v| get_u64(v, "index"));

    let mut text = String::new();
    let _ = writeln!(text, "=== itr-analyze: static trace universe per workload ===");
    let _ = writeln!(
        text,
        "{:<10} {:>6} {:>6} {:>6} {:>5} {:>7} {:>8} {:>8} {:>8} {:>7} {:>8} {:>8} {:>5}",
        "bench",
        "text",
        "blocks",
        "edges",
        "loops",
        "unreach",
        "static4",
        "static8",
        "static16",
        "alias16",
        "overfull",
        "dyn-ok",
        "viol"
    );
    let mut rows = Vec::new();
    let mut total_violations = 0u64;
    let mut total_unreachable = 0u64;
    for v in units {
        let name = get_str(v, "name");
        let statics = v.get("static_traces").and_then(Value::as_array).unwrap_or(&[]);
        let s = |i: usize| statics.get(i).and_then(Value::as_u64).unwrap_or(0);
        let unreachable = get_u64(v, "unreachable");
        let violations = get_u64(v, "violations");
        total_violations += violations;
        total_unreachable += unreachable;
        let _ = writeln!(
            text,
            "{name:<10} {:>6} {:>6} {:>6} {:>5} {:>7} {:>8} {:>8} {:>8} {:>7} {:>8} {:>8} {:>5}",
            get_u64(v, "text_instrs"),
            get_u64(v, "cfg_blocks"),
            get_u64(v, "cfg_edges"),
            get_u64(v, "loops"),
            unreachable,
            s(0),
            s(1),
            s(2),
            get_u64(v, "alias_groups"),
            get_u64(v, "overfull_sets"),
            get_u64(v, "dyn_matched"),
            violations,
        );
        rows.push(format!(
            "{name},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            get_str(v, "kind"),
            get_u64(v, "text_instrs"),
            get_u64(v, "cfg_blocks"),
            get_u64(v, "cfg_edges"),
            get_u64(v, "loops"),
            unreachable,
            s(0),
            s(1),
            s(2),
            get_u64(v, "alias_groups"),
            get_u64(v, "content_aliases"),
            get_u64(v, "overfull_sets"),
            violations,
        ));
    }
    if total_violations == 0 {
        let _ = writeln!(
            text,
            "\nEvery dynamic trace is a member of its static universe with a matching\n\
             signature (the static/dynamic cross-validation oracle held), and no\n\
             workload carries unreachable code ({total_unreachable} unreachable instructions)."
        );
    } else {
        let _ =
            writeln!(text, "\n{total_violations} CROSS-VALIDATION VIOLATION(S) — see analyze.csv.");
    }
    Emitted {
        txt_name: "analyze.txt",
        text,
        csv: Some(Csv {
            name: "analyze.csv",
            header: "bench,kind,text_instrs,cfg_blocks,cfg_edges,loops,unreachable,\
                     static4,static8,static16,alias_groups16,content_aliases16,\
                     overfull_sets16,violations"
                .to_string(),
            rows,
        }),
    }
}

/// Registers the sharded analysis and its emit job.
pub fn register(reg: &mut Registry, scale: &Scale, out: &Path) {
    let seed = scale.seed;
    reg.add(JobSpec::new("analyze-suite", &[], move |_| {
        let total = suite::everything(seed, ANALYZE_MIMIC_INSTRS).len() as u64;
        (0..ANALYZE_SHARDS)
            .map(|shard| {
                ShardSpec::new(shard, (shard as u64, total), move |ctx| {
                    let cfg = AnalyzeConfig {
                        verify_budget: ANALYZE_VERIFY_BUDGET,
                        ..AnalyzeConfig::default()
                    };
                    let workloads = suite::everything(seed, ANALYZE_MIMIC_INSTRS);
                    let mut values = Vec::new();
                    for (index, w) in workloads.iter().enumerate() {
                        if index as u32 % ANALYZE_SHARDS != shard || ctx.cancelled() {
                            continue;
                        }
                        let kind = match w.kind {
                            WorkloadKind::Kernel => "kernel",
                            WorkloadKind::Mimic => "mimic",
                        };
                        let analysis = analyze_program(&w.name, kind, &w.program, &cfg);
                        values.push(workload_value(index, &w.kind, &analysis));
                    }
                    data_payload(obj(vec![
                        ("shard", Value::UInt(shard as u64)),
                        ("workloads", Value::Array(values)),
                    ]))
                })
            })
            .collect()
    }));
    let dir = out.to_path_buf();
    reg.add(JobSpec::single("analyze", &["analyze-suite"], move |_, board| {
        let shards: Vec<Value> = board.expect("analyze-suite").data().cloned().collect();
        emit_payload(&dir, &render_analyze(&shards))
    }));
}
