//! Observation-window sensitivity (the paper's footnote 1): the same
//! fault population classified under growing windows, one shard per
//! window point.

use super::{data_payload, emit_payload, get_u64, obj, Csv, Emitted, Scale};
use crate::experiments::injection::{planned_campaign, tally, OutcomeCounts};
use itr_faults::{CampaignConfig, Outcome};
use itr_harness::{JobSpec, Registry, ShardSpec};
use itr_stats::json::Value;
use itr_workloads::profiles;
use std::fmt::Write as _;
use std::path::Path;

/// The windows the study sweeps.
pub const WINDOWS: [u64; 5] = [1_000, 4_000, 16_000, 64_000, 256_000];

/// The generated-program size (the script never overrode the binary's
/// default).
pub const WINDOW_PROGRAM_INSTRS: u64 = 200_000;

/// The campaign configuration for one window point (mirrors the
/// `window_sensitivity` binary).
pub fn window_cfg(base_seed: u64, faults: u32, window: u64, program_instrs: u64) -> CampaignConfig {
    CampaignConfig {
        faults,
        window_cycles: window,
        min_decode: 200,
        max_decode: program_instrs,
        seed: base_seed ^ 0x71D0,
        threads: 0,
        ..CampaignConfig::default()
    }
}

/// One window point's tallies.
#[derive(Debug, Clone)]
pub struct WindowUnit {
    /// Observation window in cycles.
    pub window: u64,
    /// Outcome tallies in [`Outcome::ALL`] order.
    pub counts: OutcomeCounts,
}

impl WindowUnit {
    fn pcts(&self) -> (f64, f64, f64, f64) {
        let n = self.counts.iter().sum::<u64>().max(1) as f64;
        let frac = |o: Outcome| {
            let i = Outcome::ALL.iter().position(|x| *x == o).expect("known outcome");
            self.counts[i] as f64 * 100.0 / n
        };
        let itr = Outcome::ALL.into_iter().filter(|o| o.itr_detected()).map(frac).sum::<f64>();
        let may = frac(Outcome::MayItrSdc) + frac(Outcome::MayItrMask);
        let undet = frac(Outcome::UndetSdc) + frac(Outcome::UndetMask) + frac(Outcome::UndetWdog);
        let spc = frac(Outcome::SpcSdc);
        (itr, may, undet, spc)
    }
}

/// Renders the study exactly as the `window_sensitivity` binary prints
/// it.
pub fn render_window(units: &[WindowUnit], faults: u32, bench: &str) -> Emitted {
    let mut text = String::new();
    let _ = writeln!(
        text,
        "=== Window sensitivity: {faults} faults on `{bench}`, growing observation window ==="
    );
    let _ = writeln!(
        text,
        "{:>10} {:>10} {:>10} {:>10} {:>10}",
        "window", "ITR%", "MayITR%", "Undet%", "spc%"
    );
    let mut rows = Vec::new();
    for u in units {
        let (itr, may, undet, spc) = u.pcts();
        let _ =
            writeln!(text, "{:>10} {itr:>9.1}% {may:>9.1}% {undet:>9.1}% {spc:>9.1}%", u.window);
        rows.push(format!("{},{itr:.2},{may:.2},{undet:.2},{spc:.2}", u.window));
    }
    let _ =
        writeln!(text, "\nFinding (matches the paper's footnote 1): detection saturates almost");
    let _ = writeln!(
        text,
        "immediately — faults strike hot traces in proportion to their decode share,"
    );
    let _ =
        writeln!(text, "and hot traces re-check within hundreds of cycles. The small MayITR mass");
    let _ =
        writeln!(text, "either converts to detection or is evicted (becoming Undet) as the window");
    let _ =
        writeln!(text, "grows; nothing changes past the knee, so the paper's 1M-cycle window is");
    let _ = writeln!(text, "comfortably sufficient.");
    Emitted {
        txt_name: "window_sensitivity.txt",
        text,
        csv: Some(Csv {
            name: "window_sensitivity.csv",
            header: "window_cycles,itr_pct,mayitr_pct,undet_pct,spc_pct".to_string(),
            rows,
        }),
    }
}

/// Registers the sweep job and its emit job.
pub fn register(reg: &mut Registry, scale: &Scale, out: &Path) {
    let s = scale.clone();
    reg.add(JobSpec::new("window-sweep", &[], move |_| {
        let profile = profiles::by_name("vortex").expect("known");
        WINDOWS
            .into_iter()
            .enumerate()
            .map(|(i, window)| {
                let s = s.clone();
                ShardSpec::new(i as u32, (window, window + 1), move |ctx| {
                    let cfg = window_cfg(s.seed, s.faults, window, WINDOW_PROGRAM_INSTRS);
                    let planned = planned_campaign(profile, s.seed, WINDOW_PROGRAM_INSTRS, &cfg);
                    let n = planned.plan.faults().len() as u32;
                    let shard =
                        planned
                            .plan
                            .run_range(&planned.program, &planned.cfg, 0, n, &|| ctx.cancelled());
                    data_payload(obj(vec![
                        ("window", Value::UInt(window)),
                        (
                            "counts",
                            Value::Array(
                                tally(&shard.records).iter().map(|&c| Value::UInt(c)).collect(),
                            ),
                        ),
                    ]))
                })
            })
            .collect()
    }));
    let dir = out.to_path_buf();
    let s = scale.clone();
    reg.add(JobSpec::single("window-sensitivity", &["window-sweep"], move |_, board| {
        let units: Vec<WindowUnit> = board
            .expect("window-sweep")
            .data()
            .map(|v| {
                let arr = v.get("counts").and_then(Value::as_array).expect("counts");
                let mut counts = [0u64; 10];
                for (i, c) in arr.iter().enumerate().take(10) {
                    counts[i] = c.as_u64().expect("count");
                }
                WindowUnit { window: get_u64(v, "window"), counts }
            })
            .collect();
        emit_payload(&dir, &render_window(&units, s.faults, "vortex"))
    }));
}
