//! Observation-window sensitivity (the paper's footnote 1): the same
//! fault population classified under growing windows.
//!
//! Sharded by **fault range**, not window point: each shard simulates
//! its faults once (at the largest window) and classifies every
//! [`WINDOWS`] boundary from the same execution via
//! [`CampaignPlan::run_range_windows`] — one fifth of the pre-fan-out
//! simulation work, byte-identical artifacts.
//!
//! [`CampaignPlan::run_range_windows`]: itr_faults::CampaignPlan::run_range_windows

use super::{data_payload, emit_payload, get_arr, get_u64, obj, Csv, Emitted, Scale};
use crate::experiments::injection::{planned_campaign, tally, OutcomeCounts, FAULTS_PER_SHARD};
use itr_faults::{shard_bounds, CampaignConfig, Outcome};
use itr_harness::{JobSpec, Registry, ShardSpec};
use itr_stats::json::Value;
use itr_workloads::profiles;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// The windows the study sweeps.
pub const WINDOWS: [u64; 5] = [1_000, 4_000, 16_000, 64_000, 256_000];

/// The generated-program size (the script never overrode the binary's
/// default).
pub const WINDOW_PROGRAM_INSTRS: u64 = 200_000;

/// The campaign configuration for one window point (mirrors the
/// `window_sensitivity` binary).
pub fn window_cfg(base_seed: u64, faults: u32, window: u64, program_instrs: u64) -> CampaignConfig {
    CampaignConfig {
        faults,
        window_cycles: window,
        min_decode: 200,
        max_decode: program_instrs,
        seed: base_seed ^ 0x71D0,
        threads: 0,
        ..CampaignConfig::default()
    }
}

/// One window point's tallies.
#[derive(Debug, Clone)]
pub struct WindowUnit {
    /// Observation window in cycles.
    pub window: u64,
    /// Outcome tallies in [`Outcome::ALL`] order.
    pub counts: OutcomeCounts,
}

impl WindowUnit {
    fn pcts(&self) -> (f64, f64, f64, f64) {
        let n = self.counts.iter().sum::<u64>().max(1) as f64;
        let frac = |o: Outcome| {
            let i = Outcome::ALL.iter().position(|x| *x == o).expect("known outcome");
            self.counts[i] as f64 * 100.0 / n
        };
        let itr = Outcome::ALL.into_iter().filter(|o| o.itr_detected()).map(frac).sum::<f64>();
        let may = frac(Outcome::MayItrSdc) + frac(Outcome::MayItrMask);
        let undet = frac(Outcome::UndetSdc) + frac(Outcome::UndetMask) + frac(Outcome::UndetWdog);
        let spc = frac(Outcome::SpcSdc);
        (itr, may, undet, spc)
    }
}

/// Renders the study exactly as the `window_sensitivity` binary prints
/// it.
pub fn render_window(units: &[WindowUnit], faults: u32, bench: &str) -> Emitted {
    let mut text = String::new();
    let _ = writeln!(
        text,
        "=== Window sensitivity: {faults} faults on `{bench}`, growing observation window ==="
    );
    let _ = writeln!(
        text,
        "{:>10} {:>10} {:>10} {:>10} {:>10}",
        "window", "ITR%", "MayITR%", "Undet%", "spc%"
    );
    let mut rows = Vec::new();
    for u in units {
        let (itr, may, undet, spc) = u.pcts();
        let _ =
            writeln!(text, "{:>10} {itr:>9.1}% {may:>9.1}% {undet:>9.1}% {spc:>9.1}%", u.window);
        rows.push(format!("{},{itr:.2},{may:.2},{undet:.2},{spc:.2}", u.window));
    }
    let _ =
        writeln!(text, "\nFinding (matches the paper's footnote 1): detection saturates almost");
    let _ = writeln!(
        text,
        "immediately — faults strike hot traces in proportion to their decode share,"
    );
    let _ =
        writeln!(text, "and hot traces re-check within hundreds of cycles. The small MayITR mass");
    let _ =
        writeln!(text, "either converts to detection or is evicted (becoming Undet) as the window");
    let _ =
        writeln!(text, "grows; nothing changes past the knee, so the paper's 1M-cycle window is");
    let _ = writeln!(text, "comfortably sufficient.");
    Emitted {
        txt_name: "window_sensitivity.txt",
        text,
        csv: Some(Csv {
            name: "window_sensitivity.csv",
            header: "window_cycles,itr_pct,mayitr_pct,undet_pct,spc_pct".to_string(),
            rows,
        }),
    }
}

/// Registers the sweep job and its emit job.
pub fn register(reg: &mut Registry, scale: &Scale, out: &Path) {
    let s = scale.clone();
    let ranges = shard_bounds(scale.faults, scale.faults.div_ceil(FAULTS_PER_SHARD));
    reg.add(JobSpec::new("window-sweep", &[], move |_| {
        let profile = profiles::by_name("vortex").expect("known");
        ranges
            .iter()
            .enumerate()
            .map(|(ri, &(lo, hi))| {
                let s = s.clone();
                ShardSpec::new(ri as u32, (lo as u64, hi as u64), move |ctx| {
                    // One plan at the largest window: its golden stream
                    // covers every smaller boundary, and the fault list
                    // is window-independent by construction.
                    let top = *WINDOWS.last().expect("non-empty window sweep");
                    let cfg = window_cfg(s.seed, s.faults, top, WINDOW_PROGRAM_INSTRS);
                    let planned = planned_campaign(profile, s.seed, WINDOW_PROGRAM_INSTRS, &cfg);
                    let shards = planned.plan.run_range_windows(
                        &planned.program,
                        &planned.cfg,
                        &WINDOWS,
                        lo,
                        hi,
                        &|| ctx.cancelled(),
                    );
                    data_payload(obj(vec![
                        ("lo", Value::UInt(lo as u64)),
                        ("hi", Value::UInt(hi as u64)),
                        (
                            "windows",
                            Value::Array(
                                WINDOWS
                                    .iter()
                                    .zip(&shards)
                                    .map(|(&window, shard)| {
                                        obj(vec![
                                            ("window", Value::UInt(window)),
                                            (
                                                "counts",
                                                Value::Array(
                                                    tally(&shard.records)
                                                        .iter()
                                                        .map(|&c| Value::UInt(c))
                                                        .collect(),
                                                ),
                                            ),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ]))
                })
            })
            .collect()
    }));
    let dir = out.to_path_buf();
    let s = scale.clone();
    reg.add(JobSpec::single("window-sensitivity", &["window-sweep"], move |_, board| {
        let mut per_window: BTreeMap<u64, OutcomeCounts> =
            WINDOWS.iter().map(|&w| (w, [0u64; 10])).collect();
        for data in board.expect("window-sweep").data() {
            for wv in get_arr(data, "windows") {
                let entry = per_window.get_mut(&get_u64(wv, "window")).expect("known window");
                let arr = wv.get("counts").and_then(Value::as_array).expect("counts");
                for (e, c) in entry.iter_mut().zip(arr) {
                    *e += c.as_u64().expect("count");
                }
            }
        }
        let units: Vec<WindowUnit> =
            WINDOWS.iter().map(|&w| WindowUnit { window: w, counts: per_window[&w] }).collect();
        emit_payload(&dir, &render_window(&units, s.faults, "vortex"))
    }));
}
