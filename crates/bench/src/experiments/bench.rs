//! The performance ledger: `BENCH_repro.json`.
//!
//! One shard times the simulators themselves (FuncSim and staged
//! pipeline MIPS on the same generated program) and races the sweep's
//! record/replay fan-out against the direct per-configuration
//! simulation it replaced; the emit side folds in the wall-clock every
//! compute job family spent this run (journaled shards contribute 0 —
//! the ledger describes fresh work, not resumed runs). The file is the
//! committed evidence for the sweep-speedup acceptance bar and is
//! uploaded as a CI artifact; being wall-clock, it is exempt from the
//! byte-identity checks the other artifacts must pass.

use super::{sweep, Scale};
use itr_analyze::{gap_report, GapObservations};
use itr_core::{CoverageModel, ItrCacheConfig};
use itr_faults::{FaultModel, ModelKind};
use itr_fuzz::{FuzzConfig, Fuzzer, PowerSchedule};
use itr_harness::{JobSpec, Registry, ShardPayload};
use itr_isa::asm::assemble;
use itr_recover::{run_recovery, GoldenRun, RecoverConfig};
use itr_sim::{FuncSim, Pipeline, PipelineConfig, TraceStream};
use itr_stats::json::Value;
use itr_stats::SplitMix64;
use itr_workloads::{generate_mimic_sized, kernels, profiles};
use std::path::Path;
use std::time::Instant;

/// Compute job families whose wall-clock the ledger records.
pub const TIMED_FAMILIES: [&str; 19] = [
    "characterize",
    "coverage",
    "energy",
    "fig8-campaigns",
    "byfield-campaign",
    "window-sweep",
    "perf-ipc",
    "ablations-units",
    "fuzz-campaign",
    "fuzz-service",
    "analyze-suite",
    "sweep",
    "env-interleave",
    "env-faultmodels",
    "env-workloads",
    "recover-sweep",
    "gap-suite",
    "gap-adversarial",
    "gap-ab",
];

/// Direct-path sample: how many of the 1056 sweep geometries to
/// actually re-simulate when measuring the per-configuration cost the
/// replay fan-out avoids. Kept small — extrapolating the ≥5× headline
/// from 8 direct simulations is already conservative, since the replay
/// path amortises *one* simulation over all 1056.
const DIRECT_SAMPLE: usize = 8;

/// Fuzzing-throughput probe: iterations of the timed mini-campaign and
/// the weighted-pick sample used to price the power scheduler.
const FUZZ_PROBE_ITERS: u64 = 64;
const PICK_SAMPLE: u64 = 10_000;

/// Recovery-engine probe: end-to-end fault runs of the timed sample
/// (active pipeline + ground-truth classification + rollback replay).
/// Detection-and-rollback is a few percent of SEU placements on CRC32,
/// so the sample is sized to include actual rollbacks, not just the
/// active-run fast path.
const RECOVER_PROBE_RUNS: u64 = 480;

/// Gap-analysis probe: repetitions of the full static↔dynamic diff
/// (image + CFG + three trace universes + the coverage closure) and the
/// execution budget of the observation pass.
const GAP_PROBE_REPS: u64 = 32;
const GAP_PROBE_BUDGET: u64 = 60_000;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Times the simulators and the sweep's replay-vs-direct race; returns
/// the ledger body (everything except per-family wall-clock).
pub fn measure(scale: &Scale) -> Value {
    let profile = profiles::by_name("vortex").expect("vortex profile");
    let program = generate_mimic_sized(profile, scale.seed, scale.program_instrs);

    // Functional simulator throughput.
    let t = Instant::now();
    let mut func = FuncSim::new(&program);
    func.run(scale.program_instrs);
    let func_secs = t.elapsed().as_secs_f64();
    let func_instrs = func.instr_count();

    // Staged pipeline throughput (ITR on, the evaluated configuration).
    let t = Instant::now();
    let mut pipe = Pipeline::new(&program, PipelineConfig::with_itr());
    pipe.run(u64::MAX);
    let pipe_secs = t.elapsed().as_secs_f64();
    let (pipe_instrs, pipe_cycles) = (pipe.stats().committed, pipe.stats().cycles);

    // Sweep fan-out: one simulation drives all 1056 geometries...
    let configs = sweep::geometries();
    let t = Instant::now();
    let unit = sweep::sweep_unit(profile, scale.seed, scale.program_instrs);
    let replay_secs = t.elapsed().as_secs_f64();
    assert_eq!(unit.counts.len(), configs.len());
    let replay_cps = configs.len() as f64 / replay_secs;

    // ...versus one full functional re-simulation per geometry. Spread
    // the sample across the canonical order endpoints-inclusive so it
    // covers the trace-length, size and associativity axes.
    let sample: Vec<_> = (0..DIRECT_SAMPLE)
        .map(|k| configs[k * (configs.len() - 1) / (DIRECT_SAMPLE - 1)])
        .collect();
    let t = Instant::now();
    for g in &sample {
        let mut model = CoverageModel::new(
            ItrCacheConfig::new(g.entries, g.assoc).with_checked_bit_replacement(g.checked),
        );
        for rec in TraceStream::with_trace_len(&program, scale.program_instrs, g.trace_len) {
            model.observe(&rec);
        }
        std::hint::black_box(model.report());
    }
    let direct_secs = t.elapsed().as_secs_f64();
    let direct_cps = DIRECT_SAMPLE as f64 / direct_secs;

    // Fuzzing engine throughput: a timed mini-campaign at the quick
    // oracle budgets (seeding included — it is part of every real run).
    let fcfg = FuzzConfig::quick(scale.seed, FUZZ_PROBE_ITERS);
    let t = Instant::now();
    let mut fuzzer = Fuzzer::new(fcfg.clone());
    fuzzer.seed(&|| false);
    fuzzer.run_iters(fcfg.iters, &|| false);
    let fuzz_secs = t.elapsed().as_secs_f64();
    let fuzz_execs = fuzzer.execs();

    // Power-scheduler overhead: price the O(corpus) weighted pick alone
    // against the measured per-execution cost. The pick is integer
    // arithmetic over ≤ corpus_cap entries, so the fraction is the
    // evidence behind the "negligible next to one oracle evaluation"
    // claim in `itr_fuzz::schedule`.
    let mut power = PowerSchedule::new();
    for e in fuzzer.corpus().entries() {
        power.observe(&e.features);
    }
    let mut rng = SplitMix64::new(scale.seed);
    let t = Instant::now();
    for _ in 0..PICK_SAMPLE {
        std::hint::black_box(power.pick(fuzzer.corpus(), &mut rng));
    }
    let pick_secs = t.elapsed().as_secs_f64();
    let pick_cost = pick_secs / PICK_SAMPLE as f64;
    let exec_cost = fuzz_secs / fuzz_execs.max(1) as f64;

    // Recovery-engine throughput: one sampled fault taken end to end
    // through the ground-truth engine (active run, classification and —
    // when detection fires — the shadow-replay rollback).
    let crc = assemble(kernels::CRC32.source).expect("crc32 assembles");
    let golden = GoldenRun::capture(&crc, 400_000);
    let rcfg = RecoverConfig { checkpoint_min_gap: 0, ..RecoverConfig::default() };
    let mut rng = SplitMix64::new(scale.seed ^ 0x4EC0_7E4A);
    let t = Instant::now();
    let mut rollbacks = 0u64;
    for _ in 0..RECOVER_PROBE_RUNS {
        let model = FaultModel::sample(ModelKind::Seu, &mut rng, 10, 300);
        let run = run_recovery(&crc, &model, &golden, &rcfg);
        rollbacks += u64::from(run.rolled_back);
    }
    let recover_secs = t.elapsed().as_secs_f64();

    // Gap-analysis throughput: the static↔dynamic diff the directed
    // fuzzer and the gap repro family both lean on, priced as traces
    // diffed per second on a real kernel.
    let gap_lens = [4u32, 8, 16];
    let obs = GapObservations::from_program(&crc, GAP_PROBE_BUDGET, &gap_lens);
    let t = Instant::now();
    let mut gap_traces = 0u64;
    for _ in 0..GAP_PROBE_REPS {
        let report = gap_report("crc32", &crc, &gap_lens, &obs);
        gap_traces += report.lens.iter().map(|l| l.static_traces).sum::<u64>();
        std::hint::black_box(&report);
    }
    let gap_secs = t.elapsed().as_secs_f64();

    // Directed-mutation overhead: the same mini-campaign with the
    // analysis-directed stage on; the extra wall-clock over the blind
    // run prices the plan computation + targeted mutators per exec.
    let dcfg = FuzzConfig { directed: true, ..fcfg.clone() };
    let t = Instant::now();
    let mut directed = Fuzzer::new(dcfg);
    directed.seed(&|| false);
    directed.run_iters(fcfg.iters, &|| false);
    let directed_secs = t.elapsed().as_secs_f64();
    let directed_execs = directed.execs();
    let blind_per_exec = fuzz_secs / fuzz_execs.max(1) as f64;
    let directed_per_exec = directed_secs / directed_execs.max(1) as f64;

    obj(vec![
        ("schema", Value::Str("itr-bench/v1".into())),
        ("workload", Value::Str(profile.name.to_string())),
        (
            "funcsim",
            obj(vec![
                ("instrs", Value::UInt(func_instrs)),
                ("secs", Value::Float(func_secs)),
                ("mips", Value::Float(func_instrs as f64 / func_secs / 1e6)),
            ]),
        ),
        (
            "pipeline",
            obj(vec![
                ("instrs", Value::UInt(pipe_instrs)),
                ("cycles", Value::UInt(pipe_cycles)),
                ("secs", Value::Float(pipe_secs)),
                ("mips", Value::Float(pipe_instrs as f64 / pipe_secs / 1e6)),
            ]),
        ),
        (
            "sweep",
            obj(vec![
                ("configs", Value::UInt(configs.len() as u64)),
                ("replay_secs", Value::Float(replay_secs)),
                ("replay_configs_per_sec", Value::Float(replay_cps)),
                ("direct_configs_sampled", Value::UInt(DIRECT_SAMPLE as u64)),
                ("direct_secs", Value::Float(direct_secs)),
                ("direct_configs_per_sec", Value::Float(direct_cps)),
                ("replay_speedup", Value::Float(replay_cps / direct_cps)),
            ]),
        ),
        (
            "fuzz",
            obj(vec![
                ("iters", Value::UInt(fcfg.iters)),
                ("execs", Value::UInt(fuzz_execs)),
                ("secs", Value::Float(fuzz_secs)),
                ("execs_per_sec", Value::Float(fuzz_execs as f64 / fuzz_secs)),
                ("corpus_len", Value::UInt(fuzzer.corpus().entries().len() as u64)),
                ("pick_sample", Value::UInt(PICK_SAMPLE)),
                ("pick_usecs", Value::Float(pick_cost * 1e6)),
                ("exec_usecs", Value::Float(exec_cost * 1e6)),
                ("scheduler_overhead_frac", Value::Float(pick_cost / exec_cost)),
            ]),
        ),
        (
            "recover",
            obj(vec![
                ("runs", Value::UInt(RECOVER_PROBE_RUNS)),
                ("rollbacks", Value::UInt(rollbacks)),
                ("secs", Value::Float(recover_secs)),
                ("runs_per_sec", Value::Float(RECOVER_PROBE_RUNS as f64 / recover_secs)),
            ]),
        ),
        (
            "gap",
            obj(vec![
                ("reps", Value::UInt(GAP_PROBE_REPS)),
                ("traces_diffed", Value::UInt(gap_traces)),
                ("secs", Value::Float(gap_secs)),
                ("traces_per_sec", Value::Float(gap_traces as f64 / gap_secs)),
                ("directed_iters", Value::UInt(fcfg.iters)),
                ("directed_execs", Value::UInt(directed_execs)),
                ("directed_secs", Value::Float(directed_secs)),
                (
                    "directed_overhead_frac",
                    Value::Float((directed_per_exec - blind_per_exec) / blind_per_exec),
                ),
            ]),
        ),
    ])
}

/// Registers the ledger: a timed measurement shard, then an emit job
/// that appends the per-family wall-clock and writes
/// `BENCH_repro.json`.
pub fn register(reg: &mut Registry, scale: &Scale, out: &Path) {
    let s = scale.clone();
    reg.add(JobSpec::single("bench-measure", &[], move |_, _| ShardPayload {
        data: Some(measure(&s)),
        ..ShardPayload::default()
    }));
    let dir = out.to_path_buf();
    let deps: Vec<&str> = {
        let mut d = TIMED_FAMILIES.to_vec();
        d.push("bench-measure");
        d
    };
    reg.add(JobSpec::single("bench", &deps, move |_, board| {
        let measured =
            board.expect("bench-measure").data().next().expect("bench-measure payload").clone();
        let families: Vec<(String, Value)> = TIMED_FAMILIES
            .iter()
            .map(|name| {
                let ms: u64 = board.expect(name).shards.iter().map(|sh| sh.elapsed_ms).sum();
                (name.to_string(), Value::UInt(ms))
            })
            .collect();
        let mut fields = match measured {
            Value::Object(fields) => fields,
            other => panic!("bench-measure payload is not an object: {other:?}"),
        };
        fields.push(("job_family_wall_ms".to_string(), Value::Object(families)));
        let text = Value::Object(fields).to_json();
        std::fs::create_dir_all(&dir).expect("create output dir");
        std::fs::write(dir.join("BENCH_repro.json"), &text).expect("write bench ledger");
        ShardPayload {
            data: Some(Value::Object(vec![(
                "artifacts".into(),
                Value::Array(vec![Value::Str("BENCH_repro.json".into())]),
            )])),
            ..ShardPayload::default()
        }
    }));
}
