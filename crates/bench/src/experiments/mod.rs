//! The declarative experiment registry behind `itr-repro`.
//!
//! Every figure and table of the paper registers here as an
//! `itr-harness` job. Expensive measurement work (trace characterization,
//! coverage sweeps, fault campaigns, pipeline runs) lives in *compute*
//! jobs whose shards carry structured JSON payloads; cheap *emit* jobs
//! depend on them and render the exact text/CSV artifacts the standalone
//! binaries produce. The standalone binaries call the same compute and
//! render functions serially, so `itr-repro` and
//! `cargo run --bin fig8_injection` are byte-identical by construction.
//!
//! Dataflow (the DAG `reproduce_all.sh` used to run serially, 12 times
//! over):
//!
//! ```text
//! characterize ──► table1, fig1_2, fig3_4
//! coverage     ──► fig6_7
//! energy       ──► fig9
//! fig8-campaigns (bench × fault-range shards) ──► fig8
//! byfield-campaign (fault-range shards)       ──► fig8-by-field
//! window-sweep (one shard per window)         ──► window-sensitivity
//! perf-ipc (one shard per workload)           ──► perf-overhead
//! ablations-units                             ──► ablations
//! fuzz-campaign (seed-derived shards)         ──► fuzz
//! fuzz-service (one shard per worker)         ──► fuzz-service-report
//! analyze-suite (workload shards)             ──► analyze
//! gap-suite, gap-adversarial, gap-ab          ──► gap
//! sweep (one tap shard per workload)          ──► sweep-pareto
//! env-interleave, env-faultmodels,
//! env-workloads (hostile environments)        ──► env-report
//! bench-measure + every compute family        ──► bench (BENCH_repro.json)
//! table2, area (leaf emit jobs)
//! ```

pub mod ablations;
pub mod analyze;
pub mod bench;
pub mod characterize;
pub mod coverage;
pub mod energy;
pub mod env;
pub mod fuzz;
pub mod gap;
pub mod injection;
pub mod perf;
pub mod recover;
pub mod statics;
pub mod sweep;
pub mod window;

use itr_harness::{Registry, ShardPayload};
use itr_stats::json::Value;
use std::path::Path;

/// Scale parameters of one reproduction run. `quick` and `full` mirror
/// the two modes `scripts/reproduce_all.sh` has always offered.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Faults per injection campaign (`--faults`).
    pub faults: u32,
    /// Observation window in cycles (`--window`).
    pub window_cycles: u64,
    /// Dynamic-instruction budget for trace-stream studies (`--instrs`).
    pub instrs: u64,
    /// Generated-program size for pipeline studies (`--program-instrs`).
    pub program_instrs: u64,
    /// Base RNG seed (each experiment derives its own, as the binaries do).
    pub seed: u64,
    /// Drive characterization from generated programs instead of the
    /// statistical stream model.
    pub from_programs: bool,
    /// Iteration budget of the `itr-fuzz` differential campaign
    /// (`--fuzz-budget`), split across its shards.
    pub fuzz_iters: u64,
}

impl Scale {
    /// Minutes-scale defaults.
    pub fn quick() -> Scale {
        Scale {
            faults: 200,
            window_cycles: 100_000,
            instrs: 4_000_000,
            program_instrs: 150_000,
            seed: 0x1712_2007,
            from_programs: false,
            fuzz_iters: 160,
        }
    }

    /// Paper-scale campaigns (1000 faults, 1M-cycle windows; hours).
    pub fn full() -> Scale {
        Scale {
            faults: 1000,
            window_cycles: 1_000_000,
            instrs: 8_000_000,
            program_instrs: 400_000,
            fuzz_iters: 5000,
            ..Scale::quick()
        }
    }

    /// Canonical parameter string fed to [`itr_harness::fingerprint`]; a
    /// journal written under one scale refuses to resume under another.
    pub fn canonical(&self) -> String {
        format!(
            "itr-repro/v1 faults={} window={} instrs={} program_instrs={} seed={} \
             from_programs={} fuzz_iters={}",
            self.faults,
            self.window_cycles,
            self.instrs,
            self.program_instrs,
            self.seed,
            self.from_programs,
            self.fuzz_iters
        )
    }
}

/// A rendered experiment: the stdout text of the old standalone binary
/// plus its CSV artifact (if it wrote one).
pub struct Emitted {
    /// Artifact file name for the text (e.g. `fig8.txt`).
    pub txt_name: &'static str,
    /// Exact stdout of the standalone binary, *before* the final
    /// `[wrote …]` line `write_csv` appends.
    pub text: String,
    /// CSV artifact, if any.
    pub csv: Option<Csv>,
}

/// One CSV artifact.
pub struct Csv {
    /// File name under the output directory.
    pub name: &'static str,
    /// Header row.
    pub header: String,
    /// Data rows.
    pub rows: Vec<String>,
}

impl Emitted {
    /// Writes the artifacts exactly as `reproduce_all.sh` captured them
    /// (CSV via `write_csv`, text via `tee` of stdout — including the
    /// trailing `[wrote …]` line). Returns the artifact file names.
    pub fn write(&self, out: &Path) -> Vec<String> {
        std::fs::create_dir_all(out).expect("create output dir");
        let mut artifacts = Vec::new();
        let mut text = self.text.clone();
        if let Some(csv) = &self.csv {
            let path = out.join(csv.name);
            let mut body = String::with_capacity(csv.rows.len() * 32);
            body.push_str(&csv.header);
            body.push('\n');
            for r in &csv.rows {
                body.push_str(r);
                body.push('\n');
            }
            std::fs::write(&path, body).expect("write CSV");
            text.push_str(&format!("\n[wrote {}]\n", path.display()));
            artifacts.push(csv.name.to_string());
        }
        std::fs::write(out.join(self.txt_name), text).expect("write text artifact");
        artifacts.push(self.txt_name.to_string());
        artifacts
    }

    /// Runs the binary-compatible serial path: print the text to stdout
    /// and write the CSV through [`crate::write_csv`] (which prints the
    /// `[wrote …]` line itself).
    pub fn print_and_write_csv(&self, args: &crate::Args) {
        print!("{}", self.text);
        if let Some(csv) = &self.csv {
            crate::write_csv(args, csv.name, &csv.header, &csv.rows);
        }
    }
}

/// Shard payload for an emit job: writes the artifacts and advertises
/// them for `MANIFEST.json`.
pub(crate) fn emit_payload(out: &Path, emitted: &Emitted) -> ShardPayload {
    let artifacts = emitted.write(out).into_iter().map(Value::Str).collect();
    ShardPayload {
        data: Some(Value::Object(vec![("artifacts".into(), Value::Array(artifacts))])),
        ..ShardPayload::default()
    }
}

/// Shard payload carrying only structured data for dependent jobs.
pub(crate) fn data_payload(value: Value) -> ShardPayload {
    ShardPayload { data: Some(value), ..ShardPayload::default() }
}

// -- small Value accessors (decode side of the journal round-trip) --

pub(crate) fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

pub(crate) fn get_u64(v: &Value, key: &str) -> u64 {
    v.get(key).and_then(Value::as_u64).unwrap_or_else(|| panic!("missing u64 field `{key}`"))
}

pub(crate) fn get_f64(v: &Value, key: &str) -> f64 {
    v.get(key).and_then(Value::as_f64).unwrap_or_else(|| panic!("missing f64 field `{key}`"))
}

pub(crate) fn get_str<'a>(v: &'a Value, key: &str) -> &'a str {
    v.get(key).and_then(Value::as_str).unwrap_or_else(|| panic!("missing str field `{key}`"))
}

pub(crate) fn get_arr<'a>(v: &'a Value, key: &str) -> &'a [Value] {
    v.get(key).and_then(Value::as_array).unwrap_or_else(|| panic!("missing array field `{key}`"))
}

pub(crate) fn get_bool(v: &Value, key: &str) -> bool {
    match v.get(key) {
        Some(Value::Bool(b)) => *b,
        _ => panic!("missing bool field `{key}`"),
    }
}

/// Registers the whole reproduction DAG (the 12 artifacts
/// `reproduce_all.sh` produces) against `reg`.
pub fn register_all(reg: &mut Registry, scale: &Scale, out: &Path) {
    statics::register(reg, out);
    characterize::register(reg, scale, out);
    coverage::register(reg, scale, out);
    energy::register(reg, scale, out);
    injection::register(reg, scale, out);
    window::register(reg, scale, out);
    perf::register(reg, scale, out);
    ablations::register(reg, scale, out);
    fuzz::register(reg, scale, out);
    analyze::register(reg, scale, out);
    gap::register(reg, scale, out);
    sweep::register(reg, scale, out);
    env::register(reg, scale, out);
    recover::register(reg, scale, out);
    bench::register(reg, scale, out);
}
