//! Minimal wall-clock microbenchmark harness.
//!
//! Replaces the Criterion dependency with a self-calibrating
//! measure-best-of-N loop: warm up, pick an iteration count that makes
//! one sample last ~20 ms, then report the fastest of several samples
//! (the fastest sample is the least noise-contaminated estimate of the
//! true cost). Good enough to show orders of magnitude, which is all the
//! microbenchmarks here claim.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under the name the benches use.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// One benchmark's result.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Nanoseconds per iteration (fastest sample).
    pub ns_per_iter: f64,
    /// Iterations per timed sample.
    pub iters: u64,
}

impl Measurement {
    /// Iterations per second.
    pub fn per_sec(&self) -> f64 {
        1e9 / self.ns_per_iter
    }
}

/// Times `f`, self-calibrating the iteration count, and prints one
/// aligned line: name, ns/iter, and rate. `elements` scales the reported
/// rate (e.g. instructions modelled per call) — pass 1 for plain calls.
pub fn bench<T>(name: &str, elements: u64, mut f: impl FnMut() -> T) -> Measurement {
    // Warm-up and calibration: find iters such that a sample ≈ 20 ms.
    let mut iters: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            std_black_box(f());
        }
        let elapsed = t.elapsed();
        if elapsed >= Duration::from_millis(20) || iters >= 1 << 30 {
            break;
        }
        let target = Duration::from_millis(25).as_nanos() as u64;
        let scale = target / (elapsed.as_nanos() as u64).max(1);
        iters = (iters * scale.clamp(2, 1024)).max(iters + 1);
    }

    // Measurement: best of 5 samples.
    let mut best = Duration::MAX;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..iters {
            std_black_box(f());
        }
        best = best.min(t.elapsed());
    }

    let ns_per_iter = best.as_nanos() as f64 / iters as f64;
    let m = Measurement { ns_per_iter, iters };
    let rate = m.per_sec() * elements as f64;
    println!(
        "{name:<40} {ns_per_iter:>12.1} ns/iter {:>14} /s  ({iters} iters/sample)",
        human_rate(rate),
    );
    m
}

fn human_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2}K", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let m = bench("noop_add", 1, || std_black_box(2u64) + 2);
        assert!(m.ns_per_iter > 0.0);
        assert!(m.iters >= 1);
    }
}
