//! Table 1: number of static traces per benchmark — the paper's published
//! values next to what our workloads actually produce.
//!
//! Regenerate with:
//! `cargo run -p itr-bench --bin table1_static_traces --release`

use itr_bench::experiments::characterize::{characterize_bench, render_table1, BenchChar};
use itr_bench::Args;
use itr_workloads::profiles;

fn main() {
    let args = Args::parse();
    let units: Vec<BenchChar> = profiles::all()
        .into_iter()
        .map(|p| characterize_bench(p, args.seed, args.instrs, args.from_programs))
        .collect();
    render_table1(&units).print_and_write_csv(&args);
}
