//! Table 1: number of static traces per benchmark — the paper's published
//! values next to what our workloads actually produce.
//!
//! Regenerate with:
//! `cargo run -p itr-bench --bin table1_static_traces --release`

use itr_bench::{trace_stream, write_csv, Args, StreamStats};
use itr_workloads::{profiles, MimicModel};

fn main() {
    let args = Args::parse();
    println!("=== Table 1: static traces per benchmark ===");
    println!(
        "{:<10} {:>8} {:>9} {:>9}   (modelled = full static population;",
        "bench", "paper", "modelled", "observed"
    );
    println!("{:>52}", "observed = visited within --instrs)");
    let mut rows = Vec::new();
    for profile in profiles::all() {
        let modelled = MimicModel::new(profile, args.seed).modelled_static_traces();
        let stats = StreamStats::collect(trace_stream(profile, &args));
        let observed = stats.static_traces();
        println!(
            "{:<10} {:>8} {:>9} {:>9}",
            profile.name, profile.static_traces, modelled, observed
        );
        rows.push(format!("{},{},{modelled},{observed}", profile.name, profile.static_traces));
    }
    write_csv(&args, "table1_static_traces.csv", "bench,paper,modelled,observed", &rows);
}
