//! `itr-repro` — the paper's entire evaluation as one resumable,
//! sharded harness run.
//!
//! Replaces the serial 12-binary sweep `scripts/reproduce_all.sh` used
//! to run: every table and figure registers as a job in the
//! `itr-harness` DAG, fault campaigns and workload sweeps shard across a
//! work-stealing pool, and each completed shard is journaled to
//! `results/journal.jsonl` so an interrupted run picks up with
//! `--resume` and zero recomputation. Artifacts are byte-identical to
//! the standalone binaries' output (they share compute and render code).
//!
//! ```text
//! itr-repro [--mode quick|full] [--jobs N] [--resume] [--out DIR]
//!           [--faults N] [--window N] [--instrs N] [--program-instrs N]
//!           [--seed N] [--fuzz-budget N] [--from-programs] [--grace-secs N]
//!           [--no-progress]
//! ```
//!
//! Exit status: 0 on a clean run, 1 on a configuration error (bad flag,
//! corrupt journal, fingerprint mismatch), 2 when the run completed but
//! one or more shards were quarantined (artifacts may be partial).

use itr_bench::experiments::{register_all, Scale};
use itr_harness::{
    collect_artifacts, fingerprint, write_manifest, Registry, RunOptions, ShardCounts,
};
use std::io::IsTerminal;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

struct Cli {
    scale: Scale,
    mode: String,
    out: PathBuf,
    jobs: usize,
    resume: bool,
    progress: bool,
    grace: Duration,
    only: Option<Vec<String>>,
}

fn parse_cli() -> Result<Cli, String> {
    let mut mode = "quick".to_string();
    let mut out = PathBuf::from("results");
    let mut jobs = 0usize;
    let mut resume = false;
    let mut progress = std::io::stderr().is_terminal();
    let mut grace = Duration::from_secs(15);
    let mut overrides: Vec<(String, String)> = Vec::new();
    let mut from_programs = false;
    let mut only: Option<Vec<String>> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--mode" => mode = value("--mode")?,
            "--out" => out = PathBuf::from(value("--out")?),
            "--jobs" => {
                jobs = value("--jobs")?.parse().map_err(|e| format!("--jobs: {e}"))?;
            }
            "--resume" => resume = true,
            "--only" => {
                only = Some(value("--only")?.split(',').map(str::to_string).collect());
            }
            "--from-programs" => from_programs = true,
            "--no-progress" => progress = false,
            "--progress" => progress = true,
            "--grace-secs" => {
                grace = Duration::from_secs(
                    value("--grace-secs")?.parse().map_err(|e| format!("--grace-secs: {e}"))?,
                );
            }
            "--faults" | "--window" | "--instrs" | "--program-instrs" | "--seed"
            | "--fuzz-budget" => {
                let v = value(&arg)?;
                overrides.push((arg, v));
            }
            "--help" | "-h" => {
                print!("{}", HELP);
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }

    let mut scale = match mode.as_str() {
        "quick" => Scale::quick(),
        "full" => Scale::full(),
        other => return Err(format!("--mode must be quick or full, got `{other}`")),
    };
    scale.from_programs = from_programs;
    for (flag, v) in overrides {
        let parsed: u64 = v.parse().map_err(|e| format!("{flag}: {e}"))?;
        match flag.as_str() {
            "--faults" => scale.faults = parsed as u32,
            "--window" => scale.window_cycles = parsed,
            "--instrs" => scale.instrs = parsed,
            "--program-instrs" => scale.program_instrs = parsed,
            "--seed" => scale.seed = parsed,
            "--fuzz-budget" => scale.fuzz_iters = parsed,
            _ => unreachable!(),
        }
    }
    Ok(Cli { scale, mode, out, jobs, resume, progress, grace, only })
}

const HELP: &str = "\
itr-repro — reproduce every table and figure of the ITR paper

USAGE:
    itr-repro [OPTIONS]

OPTIONS:
    --mode quick|full     scale preset (default quick; full = paper-scale)
    --jobs N              worker threads (default: all cores)
    --resume              replay completed shards from the journal
    --only JOB[,JOB...]   run only the named jobs (plus their dependencies)
    --out DIR             output directory (default results/)
    --faults N            override faults per campaign
    --window N            override observation window (cycles)
    --instrs N            override trace-stream instruction budget
    --program-instrs N    override generated-program size
    --seed N              override the base RNG seed
    --fuzz-budget N       override the itr-fuzz campaign iteration budget
    --from-programs       characterize from generated programs
    --grace-secs N        watchdog grace before abandoning a deaf shard
    --progress            force the stderr progress line on
    --no-progress         force it off
";

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("itr-repro: {e}");
            return ExitCode::from(1);
        }
    };

    let fp = fingerprint(&cli.scale.canonical());
    let mut registry = Registry::new(fp);
    register_all(&mut registry, &cli.scale, &cli.out);
    if let Some(only) = &cli.only {
        let names: Vec<&str> = only.iter().map(String::as_str).collect();
        if let Err(e) = registry.restrict(&names) {
            eprintln!("itr-repro: --only: {e}");
            return ExitCode::from(1);
        }
    }

    let opts = RunOptions {
        threads: cli.jobs,
        journal_path: Some(cli.out.join("journal.jsonl")),
        resume: cli.resume,
        mode: cli.mode.clone(),
        progress: cli.progress,
        grace: cli.grace,
    };
    if let Err(e) = std::fs::create_dir_all(&cli.out) {
        eprintln!("itr-repro: create {}: {e}", cli.out.display());
        return ExitCode::from(1);
    }
    eprintln!(
        "itr-repro: mode={} fingerprint={fp:016x} journal={}{}",
        cli.mode,
        cli.out.join("journal.jsonl").display(),
        if cli.resume { " (resuming)" } else { "" }
    );

    let summary = match itr_harness::run(registry, &opts) {
        Ok(summary) => summary,
        Err(e) => {
            eprintln!("itr-repro: {e}");
            return ExitCode::from(1);
        }
    };

    let artifacts = collect_artifacts(&summary.blackboard, &cli.out);
    let counts = ShardCounts {
        executed: summary.executed,
        journaled: summary.journaled,
        quarantined: summary.quarantined,
    };
    if let Err(e) = write_manifest(&cli.out, &cli.mode, fp, counts, &artifacts) {
        eprintln!("itr-repro: write MANIFEST.json: {e}");
        return ExitCode::from(1);
    }

    eprintln!(
        "itr-repro: {} shards — {} executed, {} replayed from journal, {} quarantined \
         ({:.1}s)",
        summary.total_shards,
        summary.executed,
        summary.journaled,
        summary.quarantined,
        summary.elapsed.as_secs_f64()
    );
    eprintln!(
        "itr-repro: {} artifacts in {} (see MANIFEST.json)",
        artifacts.len(),
        cli.out.display()
    );
    for (job, shard, reason) in &summary.quarantines {
        eprintln!("itr-repro: quarantined {job}#{shard}: {reason}");
    }
    if summary.quarantined > 0 {
        eprintln!(
            "itr-repro: run is PARTIAL — quarantined seed ranges are excluded from the \
             artifacts; rerun without --resume (or raise --grace-secs) to retry them"
        );
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}
