//! Figures 1 and 2: cumulative % of dynamic instructions contributed by
//! the top-N static traces, for the integer and floating-point suites.
//!
//! Regenerate with:
//! `cargo run -p itr-bench --bin fig1_2_repetition --release`

use itr_bench::{pct, trace_stream, write_csv, Args, StreamStats};
use itr_workloads::profiles;

fn main() {
    let args = Args::parse();
    let int_points = [50usize, 100, 200, 300, 400, 500, 700, 1000];
    let fp_points = [10usize, 25, 50, 100, 200, 300, 400, 500];
    let mut rows = Vec::new();

    for (title, suite, points) in [
        ("Figure 1 (integer)", profiles::SPEC_INT.as_slice(), &int_points),
        ("Figure 2 (floating point)", profiles::SPEC_FP.as_slice(), &fp_points),
    ] {
        println!("\n=== {title}: cumulative % dynamic instructions by top-N static traces ===");
        print!("{:<10}", "bench");
        for n in points {
            print!("{:>9}", format!("top{n}"));
        }
        println!();
        for &profile in suite {
            let stats = StreamStats::collect(trace_stream(profile, &args));
            print!("{:<10}", profile.name);
            for &n in points {
                print!("{:>9}", pct(stats.top_n_share_pct(n)));
            }
            println!();
            for &n in points {
                rows.push(format!("{},{},{:.3}", profile.name, n, stats.top_n_share_pct(n)));
            }
        }
    }
    println!("\nPaper shape: in most integer benchmarks <500 static traces contribute nearly all");
    println!("dynamic instructions (gcc/vortex excepted); FP benchmarks are more repetitive.");
    write_csv(&args, "fig1_2_repetition.csv", "bench,top_n,share_pct", &rows);
}
