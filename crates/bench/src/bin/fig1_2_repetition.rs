//! Figures 1 and 2: cumulative % of dynamic instructions contributed by
//! the top-N static traces, for the integer and floating-point suites.
//!
//! Regenerate with:
//! `cargo run -p itr-bench --bin fig1_2_repetition --release`

use itr_bench::experiments::characterize::{characterize_bench, render_fig1_2, BenchChar};
use itr_bench::Args;
use itr_workloads::profiles;

fn main() {
    let args = Args::parse();
    let units: Vec<BenchChar> = profiles::all()
        .into_iter()
        .map(|p| characterize_bench(p, args.seed, args.instrs, args.from_programs))
        .collect();
    render_fig1_2(&units).print_and_write_csv(&args);
}
