//! Figure 9: energy of the ITR cache (single- and dual-ported) versus the
//! redundant second instruction-cache fetch of structural duplication /
//! conventional time redundancy.
//!
//! Each benchmark runs on the cycle-level pipeline with the ITR unit
//! enabled; access counts come from the run's `itr-stats/v1` JSON export
//! (`itr_cache.reads + itr_cache.writes` from the real ITR unit — one
//! read per dispatched trace, one write per missed trace at commit — and
//! `pipeline.icache_accesses` from the real frontend). Per-access
//! energies come from the CACTI-lite model of `itr-power`.
//!
//! Regenerate with:
//! `cargo run -p itr-bench --bin fig9_energy --release`

use itr_bench::experiments::energy::{energy_unit, render_fig9, EnergyUnit};
use itr_bench::Args;
use itr_workloads::profiles;

fn main() {
    let args = Args::parse();
    let instrs = args.extra_or("program-instrs", 300_000);
    let units: Vec<EnergyUnit> =
        profiles::all().into_iter().map(|p| energy_unit(p, args.seed, instrs)).collect();
    render_fig9(&units).print_and_write_csv(&args);
}
