//! Figure 9: energy of the ITR cache (single- and dual-ported) versus the
//! redundant second instruction-cache fetch of structural duplication /
//! conventional time redundancy.
//!
//! Each benchmark runs on the cycle-level pipeline with the ITR unit
//! enabled; access counts come from the run's `itr-stats/v1` JSON export
//! (`itr_cache.reads + itr_cache.writes` from the real ITR unit — one
//! read per dispatched trace, one write per missed trace at commit — and
//! `pipeline.icache_accesses` from the real frontend). Per-access
//! energies come from the CACTI-lite model of `itr-power`.
//!
//! Regenerate with:
//! `cargo run -p itr-bench --bin fig9_energy --release`

use itr_bench::{write_csv, Args};
use itr_power::EnergyRow;
use itr_sim::{Pipeline, PipelineConfig};
use itr_stats::Report;
use itr_workloads::{generate_mimic_sized, profiles};

fn main() {
    let args = Args::parse();
    let instrs = args.extra_or("program-instrs", 300_000);
    println!("=== Figure 9: energy of ITR cache vs I-cache second fetch (mJ) ===");
    println!(
        "{:<10} {:>12} {:>12} {:>14} {:>14} {:>14} {:>8}",
        "bench", "itr-acc", "ic-acc", "ITR 1rd/wr", "ITR 1rd+1wr", "I-cache", "saving"
    );
    let mut rows = Vec::new();
    for profile in profiles::all() {
        let program = generate_mimic_sized(profile, args.seed, instrs);
        let mut pipe = Pipeline::new(&program, PipelineConfig::with_itr());
        pipe.run(instrs * 10);
        let report = Report::from_json(&pipe.stats_json())
            .expect("pipeline emits a valid itr-stats/v1 report");
        let row = EnergyRow::from_report(profile.name, &report)
            .expect("ITR-enabled run exports itr_cache and pipeline sections");
        println!(
            "{:<10} {:>12} {:>12} {:>14.3} {:>14.3} {:>14.3} {:>7.1}x",
            row.name,
            row.itr_accesses,
            row.icache_accesses,
            row.itr_single_port_mj,
            row.itr_dual_port_mj,
            row.icache_refetch_mj,
            row.saving_factor()
        );
        rows.push(format!(
            "{},{},{},{:.5},{:.5},{:.5}",
            row.name,
            row.itr_accesses,
            row.icache_accesses,
            row.itr_single_port_mj,
            row.itr_dual_port_mj,
            row.icache_refetch_mj
        ));
    }
    println!("\nPaper shape: the ITR cache is far more energy-efficient than fetching every");
    println!("instruction twice from the I-cache, for every benchmark.");
    write_csv(
        &args,
        "fig9_energy.csv",
        "bench,itr_accesses,icache_accesses,itr_single_mj,itr_dual_mj,icache_mj",
        &rows,
    );
}
