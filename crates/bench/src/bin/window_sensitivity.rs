//! Observation-window sensitivity of the fault classification — the
//! paper's footnote 1: *"A fault may not get detected within the scope of
//! the observation window, but its corresponding faulty signature may
//! still be in the ITR cache ... we would have to extend the observation
//! window to confirm this."*
//!
//! This study classifies the same fault population under growing windows
//! and shows the `MayITR`/`Undet` mass converting into `ITR` outcomes —
//! the evidence behind the paper's claim that one million cycles is
//! sufficient.
//!
//! Regenerate with:
//! `cargo run -p itr-bench --bin window_sensitivity --release`

use itr_bench::{write_csv, Args};
use itr_faults::{run_campaign, CampaignConfig, Outcome};
use itr_workloads::{generate_mimic_sized, profiles};

fn main() {
    let args = Args::parse();
    let faults = args.extra_or("faults", 150) as u32;
    let program_instrs = args.extra_or("program-instrs", 200_000);
    let windows = [1_000u64, 4_000, 16_000, 64_000, 256_000];

    // Use the far-repeating benchmark so late detections exist (vortex:
    // repeat distances of tens of thousands of instructions, Fig. 3).
    let profile = profiles::by_name("vortex").expect("known");
    let program = generate_mimic_sized(profile, args.seed, program_instrs);

    println!(
        "=== Window sensitivity: {faults} faults on `{}`, growing observation window ===",
        profile.name
    );
    println!("{:>10} {:>10} {:>10} {:>10} {:>10}", "window", "ITR%", "MayITR%", "Undet%", "spc%");
    let mut rows = Vec::new();
    for window in windows {
        let cfg = CampaignConfig {
            faults,
            window_cycles: window,
            min_decode: 200,
            max_decode: program_instrs,
            seed: args.seed ^ 0x71D0,
            threads: 0,
            ..CampaignConfig::default()
        };
        let result = run_campaign(&program, &cfg);
        let pct = |f: f64| f * 100.0;
        let itr = pct(result.itr_detected_fraction());
        let may = pct(result.fraction(Outcome::MayItrSdc) + result.fraction(Outcome::MayItrMask));
        let undet = pct(result.fraction(Outcome::UndetSdc)
            + result.fraction(Outcome::UndetMask)
            + result.fraction(Outcome::UndetWdog));
        let spc = pct(result.fraction(Outcome::SpcSdc));
        println!("{window:>10} {itr:>9.1}% {may:>9.1}% {undet:>9.1}% {spc:>9.1}%");
        rows.push(format!("{window},{itr:.2},{may:.2},{undet:.2},{spc:.2}"));
    }
    println!("\nFinding (matches the paper's footnote 1): detection saturates almost");
    println!("immediately — faults strike hot traces in proportion to their decode share,");
    println!("and hot traces re-check within hundreds of cycles. The small MayITR mass");
    println!("either converts to detection or is evicted (becoming Undet) as the window");
    println!("grows; nothing changes past the knee, so the paper's 1M-cycle window is");
    println!("comfortably sufficient.");
    write_csv(
        &args,
        "window_sensitivity.csv",
        "window_cycles,itr_pct,mayitr_pct,undet_pct,spc_pct",
        &rows,
    );
}
