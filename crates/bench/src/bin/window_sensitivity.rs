//! Observation-window sensitivity of the fault classification — the
//! paper's footnote 1: *"A fault may not get detected within the scope of
//! the observation window, but its corresponding faulty signature may
//! still be in the ITR cache ... we would have to extend the observation
//! window to confirm this."*
//!
//! This study classifies the same fault population under growing windows
//! and shows the `MayITR`/`Undet` mass converting into `ITR` outcomes —
//! the evidence behind the paper's claim that one million cycles is
//! sufficient.
//!
//! Regenerate with:
//! `cargo run -p itr-bench --bin window_sensitivity --release`

use itr_bench::experiments::injection::tally;
use itr_bench::experiments::window::{render_window, window_cfg, WindowUnit, WINDOWS};
use itr_bench::Args;
use itr_faults::CampaignPlan;
use itr_workloads::{generate_mimic_sized, profiles};

fn main() {
    let args = Args::parse();
    let faults = args.extra_or("faults", 150) as u32;
    let program_instrs = args.extra_or("program-instrs", 200_000);

    // Use the far-repeating benchmark so late detections exist (vortex:
    // repeat distances of tens of thousands of instructions, Fig. 3).
    let profile = profiles::by_name("vortex").expect("known");
    let program = generate_mimic_sized(profile, args.seed, program_instrs);

    // One plan at the largest window; every fault simulated once and
    // classified at each boundary from the same execution.
    let top = *WINDOWS.last().expect("non-empty window sweep");
    let cfg = window_cfg(args.seed, faults, top, program_instrs);
    let plan = CampaignPlan::new(&program, &cfg);
    let n = plan.faults().len() as u32;
    let shards = plan.run_range_windows(&program, &cfg, &WINDOWS, 0, n, &|| false);

    let units: Vec<WindowUnit> = WINDOWS
        .into_iter()
        .zip(&shards)
        .map(|(window, shard)| WindowUnit { window, counts: tally(&shard.records) })
        .collect();
    render_window(&units, faults, profile.name).print_and_write_csv(&args);
}
