//! Signature fold-function study (§2.1: *"Signature generation could be
//! done in many ways. We chose to simply bitwise XOR the signals."*).
//!
//! Quantifies the two documented blind spots of the XOR fold against the
//! rotate-XOR alternative, over the real static traces of a mimic
//! benchmark:
//!
//! * **single-event upsets** — both folds must detect 100% (the paper's
//!   operating model);
//! * **same-bit double faults** — two flips of the same signal bit within
//!   one trace: XOR cancels by construction; rotate-XOR separates them;
//! * **instruction reorder** — two adjacent instructions swapped by a
//!   fetch fault: XOR is order-insensitive; rotate-XOR is not.
//!
//! Regenerate with:
//! `cargo run -p itr-bench --bin signature_fold_study --release`

use itr_bench::{write_csv, Args};
use itr_core::{FoldKind, SignatureGen};
use itr_isa::{decode, DecodeSignals};
use itr_sim::{Memory, TraceStream};
use itr_stats::SplitMix64;
use itr_workloads::{generate_mimic_sized, profiles};
use std::collections::BTreeSet;

/// Decoded signal sequence of one static trace.
fn trace_signals(mem: &Memory, start_pc: u64, max_len: u32) -> Option<Vec<DecodeSignals>> {
    let mut out = Vec::new();
    let mut pc = start_pc;
    for _ in 0..max_len {
        let inst = decode(mem.read_u32(pc)).ok()?;
        let sig = DecodeSignals::from_instruction(&inst);
        let ends = inst.op.ends_trace();
        out.push(sig);
        if ends {
            break;
        }
        pc += 4;
    }
    Some(out)
}

fn signature(kind: FoldKind, sigs: &[DecodeSignals]) -> u64 {
    let mut g = SignatureGen::with_kind(kind);
    for s in sigs {
        g.fold(s);
    }
    g.value()
}

fn main() {
    let args = Args::parse();
    let samples = args.extra_or("samples", 20_000) as usize;
    let profile = profiles::by_name("gap").expect("known");
    let program = generate_mimic_sized(profile, args.seed, 100_000);
    let mem = Memory::with_program(&program);

    // Collect the executed static traces with at least two instructions.
    // A BTreeSet keeps the trace order (and thus the fault-sampling
    // sequence) independent of the per-process hash seed.
    let starts: BTreeSet<u64> = TraceStream::new(&program, 100_000).map(|t| t.start_pc).collect();
    let traces: Vec<Vec<DecodeSignals>> = starts
        .iter()
        .filter_map(|&pc| trace_signals(&mem, pc, 16))
        .filter(|t| t.len() >= 2)
        .collect();
    println!(
        "=== Signature fold study: {} static traces of `{}`, {samples} samples/scenario ===",
        traces.len(),
        profile.name
    );

    let mut rng = SplitMix64::new(args.seed ^ 0xF01D);
    let kinds = [FoldKind::Xor, FoldKind::RotateXor];
    let mut rows = Vec::new();
    println!("{:<28} {:>12} {:>12}", "scenario", "XOR", "rotate-XOR");

    let run = |name: &str, detected: [u64; 2], total: u64, rows: &mut Vec<String>| {
        let pct = |d: u64| d as f64 * 100.0 / total as f64;
        println!("{name:<28} {:>11.2}% {:>11.2}%", pct(detected[0]), pct(detected[1]));
        rows.push(format!("{name},{:.3},{:.3}", pct(detected[0]), pct(detected[1])));
    };

    // Scenario 1: single bit flips.
    let mut det = [0u64; 2];
    for _ in 0..samples {
        let t = &traces[rng.gen_range(0..traces.len())];
        let victim = rng.gen_range(0..t.len());
        let bit = rng.gen_range(0..64);
        for (k, kind) in kinds.into_iter().enumerate() {
            let clean = signature(kind, t);
            let mut faulty = t.clone();
            faulty[victim] = faulty[victim].with_bit_flipped(bit);
            if signature(kind, &faulty) != clean {
                det[k] += 1;
            }
        }
    }
    run("single-event upset", det, samples as u64, &mut rows);

    // Scenario 2: same-bit double faults within one trace.
    let mut det = [0u64; 2];
    for _ in 0..samples {
        let t = &traces[rng.gen_range(0..traces.len())];
        let a = rng.gen_range(0..t.len());
        let b = {
            let mut b = rng.gen_range(0..t.len() - 1);
            if b >= a {
                b += 1;
            }
            b
        };
        let bit = rng.gen_range(0..64);
        for (k, kind) in kinds.into_iter().enumerate() {
            let clean = signature(kind, t);
            let mut faulty = t.clone();
            faulty[a] = faulty[a].with_bit_flipped(bit);
            faulty[b] = faulty[b].with_bit_flipped(bit);
            if signature(kind, &faulty) != clean {
                det[k] += 1;
            }
        }
    }
    run("same-bit double fault", det, samples as u64, &mut rows);

    // Scenario 3: adjacent-instruction swap (only pairs whose signals
    // differ — swapping identical instructions is architecturally
    // invisible and no signature can see it).
    let mut det = [0u64; 2];
    let mut total = 0u64;
    for _ in 0..samples {
        let t = &traces[rng.gen_range(0..traces.len())];
        let i = rng.gen_range(0..t.len() - 1);
        if t[i] == t[i + 1] {
            continue;
        }
        total += 1;
        for (k, kind) in kinds.into_iter().enumerate() {
            let clean = signature(kind, t);
            let mut faulty = t.clone();
            faulty.swap(i, i + 1);
            if signature(kind, &faulty) != clean {
                det[k] += 1;
            }
        }
    }
    run("adjacent-instruction swap", det, total, &mut rows);

    println!("\nReading: the paper's XOR choice is perfect under its single-event-upset");
    println!("model and free; rotate-XOR additionally covers multi-event and reorder");
    println!("faults for the cost of a rotator. (Swaps of *identical* instructions are");
    println!("architecturally invisible and excluded.)");
    write_csv(&args, "signature_fold_study.csv", "scenario,xor_pct,rotxor_pct", &rows);
}
