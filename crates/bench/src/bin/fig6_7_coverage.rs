//! Figures 6 and 7: loss in fault *detection* coverage and fault
//! *recovery* coverage across the ITR cache design space — cache sizes
//! {256, 512, 1024} signatures × associativities {dm, 2, 4, 8, 16, fa}.
//!
//! Regenerate with:
//! `cargo run -p itr-bench --bin fig6_7_coverage --release`

use itr_bench::{trace_stream, write_csv, Args};
use itr_core::{Associativity, CoverageModel, ItrCacheConfig, TraceRecord};
use itr_workloads::profiles;

fn main() {
    let args = Args::parse();
    let sizes = [256u32, 512, 1024];
    let mut rows = Vec::new();

    println!("=== Figures 6/7: coverage loss (% of all dynamic instructions) ===");
    println!("(rows: benchmark × associativity; paired columns per cache size)\n");
    print!("{:<10} {:<7}", "bench", "assoc");
    for s in sizes {
        print!("  {:>8} {:>8}", format!("det{s}"), format!("rec{s}"));
    }
    println!();

    for profile in profiles::coverage_figure_set() {
        // One pass over the stream feeds all 18 configurations.
        let stream: Vec<TraceRecord> = trace_stream(profile, &args).collect();
        for assoc in Associativity::SWEEP {
            print!("{:<10} {:<7}", profile.name, assoc.label());
            for &size in &sizes {
                let mut model = CoverageModel::new(ItrCacheConfig::new(size, assoc));
                for t in &stream {
                    model.observe(t);
                }
                let r = model.report();
                print!("  {:>7.2}% {:>7.2}%", r.detection_loss_pct(), r.recovery_loss_pct());
                rows.push(format!(
                    "{},{},{size},{:.4},{:.4}",
                    profile.name,
                    assoc.label(),
                    r.detection_loss_pct(),
                    r.recovery_loss_pct()
                ));
            }
            println!();
        }
    }

    // The paper's summary statistic for the 2-way 1024-signature point.
    let mut det = Vec::new();
    let mut rec = Vec::new();
    for profile in profiles::all() {
        let mut model = CoverageModel::new(ItrCacheConfig::new(1024, Associativity::Ways(2)));
        for t in trace_stream(profile, &args) {
            model.observe(&t);
        }
        let r = model.report();
        det.push((profile.name, r.detection_loss_pct()));
        rec.push((profile.name, r.recovery_loss_pct()));
    }
    fn avg(v: &[(&str, f64)]) -> f64 {
        v.iter().map(|(_, x)| x).sum::<f64>() / v.len() as f64
    }
    fn max<'a>(v: &[(&'a str, f64)]) -> (&'a str, f64) {
        v.iter().fold(("", 0.0f64), |m, &(n, x)| if x > m.1 { (n, x) } else { m })
    }
    println!("\n2-way, 1024 signatures across all 16 benchmarks:");
    println!(
        "  detection loss: avg {:.2}% (paper: 1.3%), max {:.2}% on {} (paper: 8.2% on vortex)",
        avg(&det),
        max(&det).1,
        max(&det).0
    );
    println!(
        "  recovery  loss: avg {:.2}% (paper: 2.5%), max {:.2}% on {} (paper: 15% on vortex)",
        avg(&rec),
        max(&rec).1,
        max(&rec).0
    );
    write_csv(
        &args,
        "fig6_7_coverage.csv",
        "bench,assoc,entries,detection_loss_pct,recovery_loss_pct",
        &rows,
    );
}
