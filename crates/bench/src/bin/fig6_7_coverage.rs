//! Figures 6 and 7: loss in fault *detection* coverage and fault
//! *recovery* coverage across the ITR cache design space — cache sizes
//! {256, 512, 1024} signatures × associativities {dm, 2, 4, 8, 16, fa}.
//!
//! Regenerate with:
//! `cargo run -p itr-bench --bin fig6_7_coverage --release`

use itr_bench::experiments::coverage::{coverage_unit, render_fig6_7, CoverageUnit};
use itr_bench::Args;
use itr_workloads::profiles;

fn main() {
    let args = Args::parse();
    let units: Vec<CoverageUnit> = profiles::all()
        .into_iter()
        .map(|p| coverage_unit(p, args.seed, args.instrs, args.from_programs))
        .collect();
    render_fig6_7(&units).print_and_write_csv(&args);
}
