//! Performance overhead of the ITR machinery — quantifying the paper's
//! "low-overhead" claim on our substrate.
//!
//! Three costs could slow the pipeline down:
//!
//! 1. the commit interlock (stall until `chk`/`miss` is set — §2.2),
//! 2. dispatch stalls on a full ITR ROB,
//! 3. retry flushes (only under faults).
//!
//! This binary measures IPC with and without the ITR unit on every kernel
//! and mimic benchmark, plus the §3 redundant-fetch fallback (which adds
//! real frontend traffic on misses).
//!
//! Regenerate with:
//! `cargo run -p itr-bench --bin perf_overhead --release`

use itr_bench::experiments::perf::{measure, render_perf, PerfUnit, KERNEL_BUDGET};
use itr_bench::Args;
use itr_isa::asm::assemble;
use itr_workloads::{generate_mimic_sized, kernels, profiles};

fn main() {
    let args = Args::parse();
    let instrs = args.extra_or("program-instrs", 150_000);
    let mut units: Vec<PerfUnit> = Vec::new();
    for kernel in kernels::all() {
        let program = assemble(kernel.source).expect("kernel assembles");
        units.push(measure(kernel.name, &program, KERNEL_BUDGET));
    }
    for profile in profiles::all() {
        let program = generate_mimic_sized(profile, args.seed, instrs);
        units.push(measure(profile.name, &program, instrs * 20));
    }
    render_perf(&units).print_and_write_csv(&args);
}
