//! Performance overhead of the ITR machinery — quantifying the paper's
//! "low-overhead" claim on our substrate.
//!
//! Three costs could slow the pipeline down:
//!
//! 1. the commit interlock (stall until `chk`/`miss` is set — §2.2),
//! 2. dispatch stalls on a full ITR ROB,
//! 3. retry flushes (only under faults).
//!
//! This binary measures IPC with and without the ITR unit on every kernel
//! and mimic benchmark, plus the §3 redundant-fetch fallback (which adds
//! real frontend traffic on misses).
//!
//! Regenerate with:
//! `cargo run -p itr-bench --bin perf_overhead --release`

use itr_bench::{write_csv, Args};
use itr_core::ItrConfig;
use itr_isa::asm::assemble;
use itr_isa::Program;
use itr_sim::{Pipeline, PipelineConfig};
use itr_stats::Report;
use itr_workloads::{generate_mimic_sized, kernels, profiles};

/// IPC read back from the run's `itr-stats/v1` JSON export rather than
/// the live stats struct, exercising the same path external tooling uses.
fn ipc(program: &Program, cfg: PipelineConfig, max_cycles: u64) -> f64 {
    let mut pipe = Pipeline::new(program, cfg);
    pipe.run(max_cycles);
    let report =
        Report::from_json(&pipe.stats_json()).expect("pipeline emits a valid itr-stats/v1 report");
    let cycles = report.counter("pipeline", "cycles").unwrap_or(0);
    let committed = report.counter("pipeline", "committed").unwrap_or(0);
    if cycles == 0 {
        0.0
    } else {
        committed as f64 / cycles as f64
    }
}

fn main() {
    let args = Args::parse();
    let instrs = args.extra_or("program-instrs", 150_000);
    println!("=== ITR performance overhead (IPC) ===");
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>10} {:>10}",
        "workload", "baseline", "ITR", "ITR+rfod", "ITR ovh", "rfod ovh"
    );
    let mut rows = Vec::new();
    let mut run = |name: &str, program: &Program, budget: u64| {
        let base = ipc(program, PipelineConfig::default(), budget);
        let itr = ipc(program, PipelineConfig::with_itr(), budget);
        let rfod_cfg = PipelineConfig {
            itr: Some(ItrConfig { redundant_fetch_on_miss: true, ..ItrConfig::paper_default() }),
            ..PipelineConfig::default()
        };
        let rfod = ipc(program, rfod_cfg, budget);
        let ovh = (1.0 - itr / base) * 100.0;
        let rovh = (1.0 - rfod / base) * 100.0;
        println!("{name:<12} {base:>9.3} {itr:>9.3} {rfod:>9.3} {ovh:>9.2}% {rovh:>9.2}%");
        rows.push(format!("{name},{base:.4},{itr:.4},{rfod:.4}"));
    };

    for kernel in kernels::all() {
        let program = assemble(kernel.source).expect("kernel assembles");
        run(kernel.name, &program, 50_000_000);
    }
    for profile in profiles::all() {
        let program = generate_mimic_sized(profile, args.seed, instrs);
        run(profile.name, &program, instrs * 20);
    }
    println!("\nExpected: plain ITR costs at most a few percent (interlock rarely on the");
    println!("critical path); the redundant-fetch fallback costs more where miss rates are");
    println!("high (vortex/perl/gcc), the bandwidth-for-coverage trade §3 describes.");
    write_csv(&args, "perf_overhead.csv", "workload,baseline_ipc,itr_ipc,rfod_ipc", &rows);
}
