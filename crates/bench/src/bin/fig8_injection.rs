//! Figure 8: fault-injection outcome breakdown per benchmark.
//!
//! For each benchmark a mimic program runs on the cycle-level pipeline;
//! single-event upsets strike random decode-signal bits of random dynamic
//! instructions, and every fault is classified into the paper's ten
//! outcome categories (ITR/MayITR/spc/Undet × SDC/Mask/wdog, with R/D
//! recoverability for ITR-detected SDCs).
//!
//! Regenerate with:
//! `cargo run -p itr-bench --bin fig8_injection --release`
//!
//! Defaults are scaled for minutes-level runtime; paper scale is
//! `--faults 1000 --window 1000000`.

use itr_bench::{write_csv, Args};
use itr_faults::{run_campaign, CampaignConfig, Outcome};
use itr_workloads::{generate_mimic_sized, profiles};

fn main() {
    let args = Args::parse();
    let faults = args.extra_or("faults", 100) as u32;
    let window = args.extra_or("window", 50_000);
    let program_instrs = args.extra_or("program-instrs", 150_000);

    let suite = profiles::coverage_figure_set();
    println!(
        "=== Figure 8: outcome of {faults} injected faults per benchmark (window {window} cycles) ==="
    );
    print!("{:<10}", "bench");
    for o in Outcome::ALL {
        print!("{:>12}", o.label());
    }
    println!();

    let mut rows = Vec::new();
    let mut totals = vec![0.0f64; Outcome::ALL.len()];
    for profile in &suite {
        let program = generate_mimic_sized(*profile, args.seed, program_instrs);
        let cfg = CampaignConfig {
            faults,
            window_cycles: window,
            min_decode: 200,
            max_decode: program_instrs,
            seed: args.seed ^ 0xF8,
            threads: 0,
            ..CampaignConfig::default()
        };
        let result = run_campaign(&program, &cfg);
        print!("{:<10}", profile.name);
        let mut row = profile.name.to_string();
        for (i, o) in Outcome::ALL.into_iter().enumerate() {
            let f = result.fraction(o) * 100.0;
            totals[i] += f;
            print!("{f:>11.1}%");
            row.push_str(&format!(",{f:.2}"));
        }
        println!();
        rows.push(row);
    }
    print!("{:<10}", "Avg");
    let mut avg_row = "Avg".to_string();
    for t in &totals {
        let f = t / suite.len() as f64;
        print!("{f:>11.1}%");
        avg_row.push_str(&format!(",{f:.2}"));
    }
    println!();
    rows.push(avg_row);

    let itr_avg: f64 = totals
        .iter()
        .zip(Outcome::ALL)
        .filter(|(_, o)| o.itr_detected())
        .map(|(t, _)| t)
        .sum::<f64>()
        / suite.len() as f64;
    println!("\nAverage detected through the ITR cache: {itr_avg:.1}% (paper: 95.4%)");

    let header = {
        let mut h = "bench".to_string();
        for o in Outcome::ALL {
            h.push(',');
            h.push_str(o.label());
        }
        h
    };
    write_csv(&args, "fig8_injection.csv", &header, &rows);
}
