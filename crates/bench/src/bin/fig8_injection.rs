//! Figure 8: fault-injection outcome breakdown per benchmark.
//!
//! For each benchmark a mimic program runs on the cycle-level pipeline;
//! single-event upsets strike random decode-signal bits of random dynamic
//! instructions, and every fault is classified into the paper's ten
//! outcome categories (ITR/MayITR/spc/Undet × SDC/Mask/wdog, with R/D
//! recoverability for ITR-detected SDCs).
//!
//! Regenerate with:
//! `cargo run -p itr-bench --bin fig8_injection --release`
//!
//! Defaults are scaled for minutes-level runtime; paper scale is
//! `--faults 1000 --window 1000000`.

use itr_bench::experiments::injection::{fig8_cfg, render_fig8, tally, Fig8Unit};
use itr_bench::Args;
use itr_faults::run_campaign;
use itr_workloads::{generate_mimic_sized, profiles};

fn main() {
    let args = Args::parse();
    let faults = args.extra_or("faults", 100) as u32;
    let window = args.extra_or("window", 50_000);
    let program_instrs = args.extra_or("program-instrs", 150_000);

    let units: Vec<Fig8Unit> = profiles::coverage_figure_set()
        .into_iter()
        .map(|profile| {
            let program = generate_mimic_sized(profile, args.seed, program_instrs);
            let cfg = fig8_cfg(args.seed, faults, window, program_instrs);
            let result = run_campaign(&program, &cfg);
            Fig8Unit { name: profile.name.to_string(), counts: tally(&result.records) }
        })
        .collect();
    render_fig8(&units, faults, window).print_and_write_csv(&args);
}
