//! Supplementary analysis to Figure 8: fault outcomes broken down by the
//! Table-2 decode-signal field the flipped bit belongs to.
//!
//! The paper's §4 narrates several field-specific behaviours; this binary
//! quantifies them on our substrate:
//!
//! * `lat` flips only perturb wakeup timing — masked, but the signature
//!   still differs (ITR+Mask);
//! * `num_rsrc` flips to 3 create phantom operands — deadlocks rescued by
//!   the retry (ITR+wdog+R);
//! * `rsrc`/`rdst`/`imm`/`opcode` flips are the SDC producers;
//! * `is_branch` (flags) flips create the unrepaired-misprediction
//!   scenario the sequential-PC check exists for.
//!
//! Regenerate with:
//! `cargo run -p itr-bench --bin fig8_by_field --release`

use itr_bench::experiments::injection::{byfield_cfg, render_byfield, tally_by_field};
use itr_bench::Args;
use itr_faults::run_campaign;
use itr_workloads::{generate_mimic_sized, profiles};

fn main() {
    let args = Args::parse();
    let faults = args.extra_or("faults", 400) as u32;
    let window = args.extra_or("window", 50_000);
    let program_instrs = args.extra_or("program-instrs", 100_000);

    // One representative benchmark with a deep campaign (per-field slices
    // need many samples per field).
    let profile = profiles::by_name("gap").expect("known benchmark");
    let program = generate_mimic_sized(profile, args.seed, program_instrs);
    let cfg = byfield_cfg(args.seed, faults, window, program_instrs);
    let result = run_campaign(&program, &cfg);
    let fields = tally_by_field(&result.records);
    render_byfield(&fields, faults, profile.name).print_and_write_csv(&args);
}
