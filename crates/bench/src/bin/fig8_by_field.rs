//! Supplementary analysis to Figure 8: fault outcomes broken down by the
//! Table-2 decode-signal field the flipped bit belongs to.
//!
//! The paper's §4 narrates several field-specific behaviours; this binary
//! quantifies them on our substrate:
//!
//! * `lat` flips only perturb wakeup timing — masked, but the signature
//!   still differs (ITR+Mask);
//! * `num_rsrc` flips to 3 create phantom operands — deadlocks rescued by
//!   the retry (ITR+wdog+R);
//! * `rsrc`/`rdst`/`imm`/`opcode` flips are the SDC producers;
//! * `is_branch` (flags) flips create the unrepaired-misprediction
//!   scenario the sequential-PC check exists for.
//!
//! Regenerate with:
//! `cargo run -p itr-bench --bin fig8_by_field --release`

use itr_bench::{write_csv, Args};
use itr_faults::{run_campaign, CampaignConfig, Outcome};
use itr_workloads::{generate_mimic_sized, profiles};

fn main() {
    let args = Args::parse();
    let faults = args.extra_or("faults", 400) as u32;
    let window = args.extra_or("window", 50_000);
    let program_instrs = args.extra_or("program-instrs", 100_000);

    // One representative benchmark with a deep campaign (per-field slices
    // need many samples per field).
    let profile = profiles::by_name("gap").expect("known benchmark");
    let program = generate_mimic_sized(profile, args.seed, program_instrs);
    let cfg = CampaignConfig {
        faults,
        window_cycles: window,
        min_decode: 200,
        max_decode: program_instrs,
        seed: args.seed ^ 0xF1E1D,
        threads: 0,
        ..CampaignConfig::default()
    };
    let result = run_campaign(&program, &cfg);

    println!("=== Figure 8 supplement: {faults} faults on `{}` by signal field ===", profile.name);
    print!("{:<10} {:>6}", "field", "n");
    for o in Outcome::ALL {
        print!("{:>12}", o.label());
    }
    println!();
    let mut rows = Vec::new();
    for (field, counts) in result.by_field() {
        let n: u32 = counts.values().sum();
        print!("{field:<10} {n:>6}");
        let mut row = format!("{field},{n}");
        for o in Outcome::ALL {
            let f = *counts.get(&o).unwrap_or(&0) as f64 * 100.0 / n as f64;
            print!("{f:>11.1}%");
            row.push_str(&format!(",{f:.2}"));
        }
        println!();
        rows.push(row);
    }
    println!("\nExpected: lat flips nearly all ITR+Mask; rsrc/rdst/opcode/imm carry the");
    println!("SDC mass; num_rsrc contributes the deadlock rescues (ITR+wdog+R).");

    let mut header = "field,n".to_string();
    for o in Outcome::ALL {
        header.push(',');
        header.push_str(o.label());
    }
    write_csv(&args, "fig8_by_field.csv", &header, &rows);
}
