//! Superscalar width sweep: does the ITR machinery scale with the core?
//!
//! The commit interlock polls per instruction and the ITR ROB fills with
//! one entry per in-flight trace; neither should become a bottleneck as
//! the machine gets wider. This sweep measures IPC at widths 1/2/4/8 with
//! and without the ITR unit on a mixed workload.
//!
//! Regenerate with:
//! `cargo run -p itr-bench --bin width_sweep --release`

use itr_bench::{write_csv, Args};
use itr_sim::{Pipeline, PipelineConfig};
use itr_workloads::suite;

fn main() {
    let args = Args::parse();
    let instrs = args.extra_or("program-instrs", 100_000);
    let workloads = {
        let mut v = suite::all_kernels();
        v.extend(
            suite::all_mimics(args.seed, instrs)
                .into_iter()
                .filter(|w| matches!(w.name.as_str(), "gap" | "vortex" | "swim")),
        );
        v
    };
    println!(
        "=== Superscalar width sweep (geometric-mean IPC over {} workloads) ===",
        workloads.len()
    );
    println!("{:>6} {:>12} {:>12} {:>10}", "width", "baseline", "ITR", "overhead");
    let mut rows = Vec::new();
    for width in [1u32, 2, 4, 8] {
        let mut ipc = [1.0f64, 1.0];
        for (k, with_itr) in [false, true].into_iter().enumerate() {
            for w in &workloads {
                let base =
                    if with_itr { PipelineConfig::with_itr() } else { PipelineConfig::default() };
                let cfg = PipelineConfig { width, issue_width: width, ..base };
                let mut pipe = Pipeline::new(&w.program, cfg);
                pipe.run(instrs * 40);
                ipc[k] *= pipe.stats().ipc();
            }
            ipc[k] = ipc[k].powf(1.0 / workloads.len() as f64);
        }
        let overhead = (1.0 - ipc[1] / ipc[0]) * 100.0;
        println!("{width:>6} {:>12.3} {:>12.3} {overhead:>9.2}%", ipc[0], ipc[1]);
        rows.push(format!("{width},{:.4},{:.4}", ipc[0], ipc[1]));
    }
    println!("\nExpected: the ITR unit's overhead stays negligible at every width — the");
    println!("dispatch-side check always resolves well before commit.");
    write_csv(&args, "width_sweep.csv", "width,baseline_ipc,itr_ipc", &rows);
}
