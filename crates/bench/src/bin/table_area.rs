//! §5 area comparison: the ITR cache against structural duplication of
//! the S/390 G5 I-unit.
//!
//! Regenerate with:
//! `cargo run -p itr-bench --bin table_area`

use itr_bench::experiments::statics::render_area;

fn main() {
    print!("{}", render_area().text);
}
