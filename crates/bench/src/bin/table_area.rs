//! §5 area comparison: the ITR cache against structural duplication of
//! the S/390 G5 I-unit.
//!
//! Regenerate with:
//! `cargo run -p itr-bench --bin table_area`

use itr_power::{itr_cache_area_cm2, AreaComparison};

fn main() {
    let cmp = AreaComparison::paper_itr_cache();
    println!("=== §5 area comparison (S/390 G5 die photo) ===");
    println!("I-unit (fetch + decode):          {:>6.2} cm²  (paper: 2.1 cm²)", cmp.iunit_cm2);
    println!(
        "ITR cache (1024 × 64-bit, 2-way): {:>6.3} cm²  (paper: ~0.3 cm² BTB-like structure)",
        cmp.itr_cache_cm2
    );
    println!("Ratio: {:.1}× smaller (paper: \"about one seventh\")", cmp.ratio());
    println!("\nSensitivity:");
    for (entries, bits) in [(256u32, 64u32), (512, 64), (1024, 64), (2048, 64)] {
        println!(
            "  {entries:>5} signatures × {bits} bits: {:>6.3} cm² ({:.1}× smaller than the I-unit)",
            itr_cache_area_cm2(entries, bits),
            cmp.iunit_cm2 / itr_cache_area_cm2(entries, bits)
        );
    }
}
