//! Ablations of design choices the paper raises but does not quantify:
//!
//! 1. **Checked-bit-aware replacement** (§2.3): prefer evicting lines that
//!    have already been checked — does it reduce detection-coverage loss?
//! 2. **Trace length limit** (§2.1 fixes 16): trace granularity vs. the
//!    static trace population and coverage loss.
//! 3. **Redundant fetch on ITR miss** (§3 future work): fall back to
//!    conventional time redundancy whenever inherent redundancy is
//!    unavailable — closes the recovery-coverage gap at an energy cost.
//!
//! Regenerate with:
//! `cargo run -p itr-bench --bin ablations --release`

use itr_bench::experiments::ablations::{
    checked_bit_unit, redundant_fetch_unit, render_ablations, trace_len_unit, AblationUnit,
    TRACE_LEN_BENCHES,
};
use itr_bench::Args;
use itr_workloads::profiles;

fn main() {
    let args = Args::parse();
    let program_instrs = args.extra_or("program-instrs", 200_000);
    let mut units: Vec<AblationUnit> = Vec::new();
    for profile in profiles::coverage_figure_set() {
        units.push(checked_bit_unit(profile, args.seed, args.instrs, args.from_programs));
    }
    for name in TRACE_LEN_BENCHES {
        let profile = profiles::by_name(name).expect("known benchmark");
        units.push(trace_len_unit(profile, args.seed, program_instrs));
    }
    for profile in profiles::coverage_figure_set() {
        units.push(redundant_fetch_unit(profile, args.seed, args.instrs, args.from_programs));
    }
    render_ablations(&units).print_and_write_csv(&args);
}
