//! Ablations of design choices the paper raises but does not quantify:
//!
//! 1. **Checked-bit-aware replacement** (§2.3): prefer evicting lines that
//!    have already been checked — does it reduce detection-coverage loss?
//! 2. **Trace length limit** (§2.1 fixes 16): trace granularity vs. the
//!    static trace population and coverage loss.
//! 3. **Redundant fetch on ITR miss** (§3 future work): fall back to
//!    conventional time redundancy whenever inherent redundancy is
//!    unavailable — closes the recovery-coverage gap at an energy cost.
//!
//! Regenerate with:
//! `cargo run -p itr-bench --bin ablations --release`

use itr_bench::{trace_stream, write_csv, Args};
use itr_core::{Associativity, CoverageModel, ItrCacheConfig, TraceRecord};
use itr_power::{energy_per_access_nj, ITR_CACHE_1024X2, POWER4_ICACHE};
use itr_sim::TraceStream;
use itr_workloads::{generate_mimic_sized, profiles};
use std::collections::HashSet;

fn main() {
    let args = Args::parse();
    let mut rows = Vec::new();

    // ---- 1. checked-bit-aware replacement ----
    println!("=== Ablation 1: checked-bit-aware replacement (2-way, 256 signatures) ===");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10}",
        "bench", "det(LRU)", "det(ckd)", "rec(LRU)", "rec(ckd)"
    );
    for profile in profiles::coverage_figure_set() {
        let stream: Vec<TraceRecord> = trace_stream(profile, &args).collect();
        let mut plain = CoverageModel::new(ItrCacheConfig::new(256, Associativity::Ways(2)));
        let mut checked = CoverageModel::new(
            ItrCacheConfig::new(256, Associativity::Ways(2)).with_checked_bit_replacement(true),
        );
        for t in &stream {
            plain.observe(t);
            checked.observe(t);
        }
        let (p, c) = (plain.report(), checked.report());
        println!(
            "{:<10} {:>9.2}% {:>9.2}% {:>9.2}% {:>9.2}%",
            profile.name,
            p.detection_loss_pct(),
            c.detection_loss_pct(),
            p.recovery_loss_pct(),
            c.recovery_loss_pct()
        );
        rows.push(format!(
            "checked_bit,{},{:.4},{:.4},{:.4},{:.4}",
            profile.name,
            p.detection_loss_pct(),
            c.detection_loss_pct(),
            p.recovery_loss_pct(),
            c.recovery_loss_pct()
        ));
    }

    // ---- 2. trace length limit ----
    println!("\n=== Ablation 2: trace length limit (generated programs, 1024×2-way) ===");
    println!(
        "{:<10} {:>6} {:>14} {:>10} {:>10}",
        "bench", "limit", "static traces", "det loss", "rec loss"
    );
    let instrs = args.extra_or("program-instrs", 200_000);
    for name in ["parser", "twolf", "vortex"] {
        let profile = profiles::by_name(name).expect("known benchmark");
        let program = generate_mimic_sized(profile, args.seed, instrs);
        for limit in [8u32, 16, 32] {
            let mut statics: HashSet<u64> = HashSet::new();
            let mut model = CoverageModel::new(ItrCacheConfig::new(1024, Associativity::Ways(2)));
            for t in TraceStream::with_trace_len(&program, instrs, limit) {
                statics.insert(t.start_pc);
                model.observe(&t);
            }
            let r = model.report();
            println!(
                "{:<10} {:>6} {:>14} {:>9.2}% {:>9.2}%",
                name,
                limit,
                statics.len(),
                r.detection_loss_pct(),
                r.recovery_loss_pct()
            );
            rows.push(format!(
                "trace_len,{name},{limit},{},{:.4},{:.4}",
                statics.len(),
                r.detection_loss_pct(),
                r.recovery_loss_pct()
            ));
        }
    }

    // ---- 3. redundant fetch on ITR miss / ITR-gated space redundancy ----
    // §3 sketches two fallbacks: re-fetch missed traces (time redundancy
    // on demand) or gate a duplicated frontend with the ITR cache (space
    // redundancy on demand). Both close the recovery gap; the energy
    // column compares them with full structural duplication, which pays
    // the redundant fetch for *every* instruction.
    println!("\n=== Ablation 3: redundant fetch on ITR miss vs full duplication (§3) ===");
    println!(
        "{:<10} {:>10} {:>14} {:>14} {:>14}",
        "bench", "rec loss", "gated (mJ)", "full dup (mJ)", "saving"
    );
    let e_ic = energy_per_access_nj(&POWER4_ICACHE);
    let e_itr = energy_per_access_nj(&ITR_CACHE_1024X2);
    for profile in profiles::coverage_figure_set() {
        let mut model = CoverageModel::new(ItrCacheConfig::new(1024, Associativity::Ways(2)));
        let mut miss_fetch_groups = 0u64;
        let mut all_fetch_groups = 0u64;
        let mut itr_accesses = 0u64;
        for t in trace_stream(profile, &args) {
            all_fetch_groups += (t.len as u64).div_ceil(4);
            // One extra ITR-cache check per refetched trace, plus the
            // refetch itself (one fetch group per 4 instructions).
            if model.cache().peek(t.start_pc).is_none() {
                miss_fetch_groups += (t.len as u64).div_ceil(4);
                itr_accesses += 1;
            }
            model.observe(&t);
        }
        let r = model.report();
        let gated_mj = (miss_fetch_groups as f64 * e_ic + itr_accesses as f64 * e_itr) * 1e-6;
        let full_dup_mj = all_fetch_groups as f64 * e_ic * 1e-6;
        println!(
            "{:<10} {:>9.2}% {:>14.4} {:>14.4} {:>13.1}x",
            profile.name,
            r.recovery_loss_pct(),
            gated_mj,
            full_dup_mj,
            full_dup_mj / gated_mj.max(1e-12)
        );
        rows.push(format!(
            "redundant_fetch,{},{:.4},{gated_mj:.5},{full_dup_mj:.5}",
            profile.name,
            r.recovery_loss_pct()
        ));
    }
    println!("(either fallback closes recovery loss to 0.00% for every benchmark)");
    write_csv(&args, "ablations.csv", "ablation,bench,a,b,c,d", &rows);
}
