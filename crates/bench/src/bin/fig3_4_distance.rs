//! Figures 3 and 4: % of dynamic instructions contributed by traces that
//! repeat within a given dynamic-instruction distance, in 500-instruction
//! buckets up to 10 000.
//!
//! Regenerate with:
//! `cargo run -p itr-bench --bin fig3_4_distance --release`

use itr_bench::experiments::characterize::{characterize_bench, render_fig3_4, BenchChar};
use itr_bench::Args;
use itr_workloads::profiles;

fn main() {
    let args = Args::parse();
    let units: Vec<BenchChar> = profiles::all()
        .into_iter()
        .map(|p| characterize_bench(p, args.seed, args.instrs, args.from_programs))
        .collect();
    render_fig3_4(&units).print_and_write_csv(&args);
}
