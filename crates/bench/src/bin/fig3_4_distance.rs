//! Figures 3 and 4: % of dynamic instructions contributed by traces that
//! repeat within a given dynamic-instruction distance, in 500-instruction
//! buckets up to 10 000.
//!
//! Regenerate with:
//! `cargo run -p itr-bench --bin fig3_4_distance --release`

use itr_bench::{pct, trace_stream, write_csv, Args, StreamStats};
use itr_workloads::profiles;

fn main() {
    let args = Args::parse();
    let buckets: Vec<u64> = (1..=20).map(|i| i * 500).collect();
    let mut rows = Vec::new();

    for (title, suite) in [
        ("Figure 3 (integer)", profiles::SPEC_INT.as_slice()),
        ("Figure 4 (floating point)", profiles::SPEC_FP.as_slice()),
    ] {
        println!("\n=== {title}: % dynamic instructions from repeats within distance ===");
        print!("{:<10}", "bench");
        for d in [500u64, 1000, 1500, 2000, 5000, 10000] {
            print!("{:>9}", format!("<{d}"));
        }
        println!();
        for &profile in suite {
            let stats = StreamStats::collect(trace_stream(profile, &args));
            print!("{:<10}", profile.name);
            for d in [500u64, 1000, 1500, 2000, 5000, 10000] {
                print!("{:>9}", pct(stats.within_distance_pct(d)));
            }
            println!();
            for &d in &buckets {
                rows.push(format!("{},{},{:.3}", profile.name, d, stats.within_distance_pct(d)));
            }
        }
    }
    println!("\nPaper shape: most integer benchmarks reach 85% within 5000 instructions (perl");
    println!("and vortex excepted); FP benchmarks reach near-total coverage within 1500.");
    write_csv(&args, "fig3_4_distance.csv", "bench,distance,share_pct", &rows);
}
