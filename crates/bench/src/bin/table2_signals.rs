//! Table 2: the decode-signal fields and widths carried into the ITR
//! signature — printed from the implementation so documentation and code
//! cannot drift apart.
//!
//! Regenerate with:
//! `cargo run -p itr-bench --bin table2_signals`

use itr_bench::experiments::statics::render_table2;

fn main() {
    print!("{}", render_table2().text);
}
