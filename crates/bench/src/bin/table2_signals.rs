//! Table 2: the decode-signal fields and widths carried into the ITR
//! signature — printed from the implementation so documentation and code
//! cannot drift apart.
//!
//! Regenerate with:
//! `cargo run -p itr-bench --bin table2_signals`

use itr_isa::{SIGNAL_FIELDS, TOTAL_SIGNAL_BITS};

fn main() {
    println!("=== Table 2: list of decode signals ===");
    println!("{:<10} {:<42} {:>5}", "field", "description", "width");
    let mut total = 0;
    for f in SIGNAL_FIELDS {
        println!("{:<10} {:<42} {:>5}", f.name, f.description, f.width);
        total += f.width;
    }
    println!("{:<10} {:<42} {:>5}", "total", "", total);
    assert_eq!(total, TOTAL_SIGNAL_BITS);
}
