//! Shared plumbing for the experiment binaries: argument parsing, trace
//! sources, and table/CSV output.
//!
//! Every binary accepts `--instrs N`, `--seed S`, `--out DIR` and
//! `--from-programs` (run the generated mimic programs on the functional
//! simulator instead of sampling the statistical stream model — slower,
//! but exercises the full stack).

// Tests opt back out of the workspace `unwrap_used` deny: panicking on
// a broken expectation is exactly what a test should do.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod experiments;
pub mod timing;

use itr_core::TraceRecord;
use itr_sim::TraceStream;
use itr_workloads::{generate_mimic_sized, SpecProfile, SyntheticTraceStream};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Common command-line options.
#[derive(Debug, Clone)]
pub struct Args {
    /// Dynamic-instruction budget per benchmark.
    pub instrs: u64,
    /// RNG seed.
    pub seed: u64,
    /// Output directory for CSV artifacts.
    pub out: PathBuf,
    /// Drive trace streams from generated programs instead of the
    /// statistical model.
    pub from_programs: bool,
    /// Free-form extras: `--faults`, `--window`, etc.
    pub extra: HashMap<String, u64>,
}

impl Args {
    /// Parses `std::env::args`, accepting `--key value` pairs.
    pub fn parse() -> Args {
        let mut args = Args {
            instrs: 2_000_000,
            seed: 0x1712_2007,
            out: PathBuf::from("results"),
            from_programs: false,
            extra: HashMap::new(),
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--instrs" => {
                    args.instrs = argv[i + 1].parse().expect("--instrs takes a number");
                    i += 2;
                }
                "--seed" => {
                    args.seed = argv[i + 1].parse().expect("--seed takes a number");
                    i += 2;
                }
                "--out" => {
                    args.out = PathBuf::from(&argv[i + 1]);
                    i += 2;
                }
                "--from-programs" => {
                    args.from_programs = true;
                    i += 1;
                }
                key if key.starts_with("--") => {
                    let value = argv
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("{key} takes a number"));
                    args.extra.insert(key[2..].to_string(), value);
                    i += 2;
                }
                other => panic!("unknown argument `{other}`"),
            }
        }
        args
    }

    /// An extra numeric option with a default.
    pub fn extra_or(&self, key: &str, default: u64) -> u64 {
        self.extra.get(key).copied().unwrap_or(default)
    }
}

/// Produces the committed trace stream for one benchmark, from either the
/// statistical model or a generated program run on the functional
/// simulator.
pub fn trace_stream(profile: SpecProfile, args: &Args) -> Box<dyn Iterator<Item = TraceRecord>> {
    stream_with(profile, args.seed, args.instrs, args.from_programs)
}

/// [`trace_stream`] with explicit parameters instead of [`Args`] — the
/// form the harness experiment shards use.
pub fn stream_with(
    profile: SpecProfile,
    seed: u64,
    instrs: u64,
    from_programs: bool,
) -> Box<dyn Iterator<Item = TraceRecord>> {
    if from_programs {
        let program = generate_mimic_sized(profile, seed, instrs);
        Box::new(TraceStream::new(&program, instrs))
    } else {
        Box::new(SyntheticTraceStream::new(profile, seed, instrs))
    }
}

/// Writes a CSV artifact under the output directory and reports the path.
pub fn write_csv(args: &Args, name: &str, header: &str, rows: &[String]) {
    std::fs::create_dir_all(&args.out).expect("create output dir");
    let path = args.out.join(name);
    let mut body = String::with_capacity(rows.len() * 32);
    let _ = writeln!(body, "{header}");
    for r in rows {
        let _ = writeln!(body, "{r}");
    }
    std::fs::write(&path, body).expect("write CSV");
    println!("\n[wrote {}]", path.display());
}

/// Formats a percentage for the text tables.
pub fn pct(x: f64) -> String {
    format!("{x:6.2}%")
}

/// Per-trace dynamic-instruction totals and repeat distances for a
/// committed trace stream — the measurements behind Figures 1–4 and
/// Table 1.
#[derive(Debug, Default, Clone)]
pub struct StreamStats {
    /// Total dynamic instructions.
    pub total_instrs: u64,
    /// Dynamic instructions contributed per static trace.
    pub instrs_by_trace: HashMap<u64, u64>,
    /// For each repeat of a trace, the dynamic-instruction distance since
    /// its previous occurrence, weighted by the instance length:
    /// `(distance, instrs)`.
    pub repeat_distances: Vec<(u64, u64)>,
}

impl StreamStats {
    /// Accumulates a whole stream.
    pub fn collect(stream: impl Iterator<Item = TraceRecord>) -> StreamStats {
        let mut stats = StreamStats::default();
        let mut last_pos: HashMap<u64, u64> = HashMap::new();
        let mut pos = 0u64;
        for t in stream {
            stats.total_instrs += t.len as u64;
            *stats.instrs_by_trace.entry(t.start_pc).or_default() += t.len as u64;
            if let Some(prev) = last_pos.insert(t.start_pc, pos) {
                stats.repeat_distances.push((pos - prev, t.len as u64));
            }
            pos += t.len as u64;
        }
        stats
    }

    /// Number of distinct static traces observed (Table 1).
    pub fn static_traces(&self) -> usize {
        self.instrs_by_trace.len()
    }

    /// Cumulative % of dynamic instructions contributed by the top `n`
    /// static traces (Figures 1–2).
    pub fn top_n_share_pct(&self, n: usize) -> f64 {
        let mut counts: Vec<u64> = self.instrs_by_trace.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top: u64 = counts.iter().take(n).sum();
        top as f64 * 100.0 / self.total_instrs.max(1) as f64
    }

    /// % of dynamic instructions contributed by repeats within `limit`
    /// dynamic instructions (Figures 3–4).
    pub fn within_distance_pct(&self, limit: u64) -> f64 {
        let close: u64 =
            self.repeat_distances.iter().filter(|(d, _)| *d < limit).map(|(_, n)| *n).sum();
        close as f64 * 100.0 / self.total_instrs.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itr_core::TraceRecord;

    fn t(pc: u64, len: u32) -> TraceRecord {
        TraceRecord { start_pc: pc, signature: pc, len }
    }

    #[test]
    fn stream_stats_counts_and_shares() {
        // Trace A: 3 instances of 10 instrs; trace B: 1 instance of 5.
        let stream = vec![t(0x100, 10), t(0x200, 5), t(0x100, 10), t(0x100, 10)];
        let stats = StreamStats::collect(stream.into_iter());
        assert_eq!(stats.total_instrs, 35);
        assert_eq!(stats.static_traces(), 2);
        assert!((stats.top_n_share_pct(1) - 30.0 / 35.0 * 100.0).abs() < 1e-9);
        assert_eq!(stats.top_n_share_pct(2), 100.0);
    }

    #[test]
    fn repeat_distances_are_instruction_weighted() {
        // A at pos 0 (len 10), B at 10 (len 5), A at 15 -> distance 15.
        let stream = vec![t(0x100, 10), t(0x200, 5), t(0x100, 10)];
        let stats = StreamStats::collect(stream.into_iter());
        assert_eq!(stats.repeat_distances, vec![(15, 10)]);
        assert!((stats.within_distance_pct(16) - 10.0 / 25.0 * 100.0).abs() < 1e-9);
        assert_eq!(stats.within_distance_pct(15), 0.0, "strict inequality");
    }

    #[test]
    fn empty_stream_is_well_defined() {
        let stats = StreamStats::collect(std::iter::empty());
        assert_eq!(stats.total_instrs, 0);
        assert_eq!(stats.top_n_share_pct(10), 0.0);
        assert_eq!(stats.within_distance_pct(500), 0.0);
    }
}
