//! The fuzzing engine: seed, mutate, evaluate, retain, shrink.
//!
//! Fully deterministic for a fixed [`FuzzConfig`]: every random choice
//! flows from one `SplitMix64` stream, the fault-consistency oracle runs
//! on a fixed cadence, and the exported statistics are built from
//! ordered containers — two runs with the same seed and budget produce
//! byte-identical stats and findings.

use crate::case::FuzzCase;
use crate::corpus::{seed_corpus, Corpus, RegressionCase};
use crate::coverage::CoverageMap;
use crate::mutate;
use crate::oracle::{self, OracleConfig, OracleKind};
use crate::shrink::shrink;
use itr_stats::json::Value;
use itr_stats::SplitMix64;
use std::collections::BTreeMap;

/// Schema tag of the exported statistics document.
pub const STATS_SCHEMA: &str = "itr-fuzz-stats/v1";

/// Engine parameters.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; every random decision derives from it.
    pub seed: u64,
    /// Mutation/evaluation iterations (seed evaluations not counted).
    pub iters: u64,
    /// Oracle budgets.
    pub oracle: OracleConfig,
    /// Run the fault-consistency oracle every `fault_every`-th iteration.
    pub fault_every: u64,
    /// Maximum retained corpus entries.
    pub corpus_cap: usize,
    /// Dynamic size of the seeded SPEC2K mimics.
    pub mimic_seed_instrs: u64,
    /// Skip workload seeding (unit tests and shrink-replay paths).
    pub skip_seeding: bool,
    /// Probability of generating a fresh case instead of mutating.
    pub fresh_ratio: f64,
    /// Shrinker evaluation budget per finding.
    pub shrink_budget: usize,
    /// Stop recording findings past this many (the loop keeps running
    /// for coverage, but shrinking duplicates of a systemic bug is
    /// wasted work).
    pub max_findings: usize,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seed: 1,
            iters: 1000,
            oracle: OracleConfig::default(),
            fault_every: 4,
            corpus_cap: 256,
            mimic_seed_instrs: 1500,
            skip_seeding: false,
            fresh_ratio: 0.15,
            shrink_budget: 48,
            max_findings: 8,
        }
    }
}

impl FuzzConfig {
    /// A small configuration for smoke tests and the harness's quick
    /// scale: tight budgets, few iterations, cheap faults.
    pub fn quick(seed: u64, iters: u64) -> FuzzConfig {
        FuzzConfig {
            seed,
            iters,
            oracle: OracleConfig { max_instrs: 600, fault_count: 1, window_cycles: 2500 },
            fault_every: 8,
            corpus_cap: 64,
            mimic_seed_instrs: 500,
            ..FuzzConfig::default()
        }
    }
}

/// Aggregate statistics of one fuzzing run.
#[derive(Debug, Clone, Default)]
pub struct FuzzStats {
    /// Iterations executed (may stop early on cancellation).
    pub iterations: u64,
    /// Seed cases evaluated.
    pub seeds: u64,
    /// Coverage features lit.
    pub coverage: usize,
    /// Retained corpus size.
    pub corpus_len: usize,
    /// Order-insensitive digest of the retained corpus.
    pub corpus_digest: u64,
    /// Total instructions the golden reference committed.
    pub golden_instrs: u64,
    /// Findings per oracle.
    pub findings_by_oracle: BTreeMap<&'static str, u64>,
}

impl FuzzStats {
    /// Total findings across oracles.
    pub fn findings(&self) -> u64 {
        self.findings_by_oracle.values().sum()
    }
}

/// Everything one run produced.
#[derive(Debug, Clone, Default)]
pub struct FuzzOutcome {
    /// Run statistics.
    pub stats: FuzzStats,
    /// Shrunken, deduplicated findings ready for persistence.
    pub findings: Vec<RegressionCase>,
}

impl FuzzOutcome {
    /// The deterministic `itr-fuzz-stats/v1` export.
    pub fn stats_value(&self, cfg: &FuzzConfig) -> Value {
        let findings = self
            .stats
            .findings_by_oracle
            .iter()
            .map(|(k, v)| (k.to_string(), Value::UInt(*v)))
            .collect();
        Value::Object(vec![
            ("schema".to_string(), Value::Str(STATS_SCHEMA.to_string())),
            ("seed".to_string(), Value::UInt(cfg.seed)),
            ("iterations".to_string(), Value::UInt(self.stats.iterations)),
            ("seeds".to_string(), Value::UInt(self.stats.seeds)),
            ("coverage".to_string(), Value::UInt(self.stats.coverage as u64)),
            ("corpus_len".to_string(), Value::UInt(self.stats.corpus_len as u64)),
            (
                "corpus_digest".to_string(),
                Value::Str(format!("{:#018x}", self.stats.corpus_digest)),
            ),
            ("golden_instrs".to_string(), Value::UInt(self.stats.golden_instrs)),
            ("findings_total".to_string(), Value::UInt(self.stats.findings())),
            ("findings".to_string(), Value::Object(findings)),
        ])
    }
}

/// Shrinks one finding down to a minimal reproducer.
fn shrink_finding(case: &FuzzCase, finding: &oracle::Finding, cfg: &FuzzConfig) -> RegressionCase {
    let ocfg = cfg.oracle.clone();
    let mut reproduces: Box<dyn FnMut(&FuzzCase) -> bool> = match (finding.kind, finding.fault) {
        (OracleKind::FaultConsistency, Some(fault)) => {
            Box::new(move |c| oracle::replay_fault(c, fault, &ocfg).is_some())
        }
        (kind, _) => Box::new(move |c| {
            let mut rng = SplitMix64::new(0);
            oracle::evaluate(c, &ocfg, false, &mut rng).findings.iter().any(|f| f.kind == kind)
        }),
    };
    let small = shrink(case, cfg.shrink_budget, &mut reproduces);
    RegressionCase::new(small, finding, cfg.oracle.clone())
}

/// Runs one fuzzing campaign. `cancelled` is polled between iterations;
/// a `true` return stops the loop early (the outcome reflects the work
/// done so far).
pub fn run(cfg: &FuzzConfig, cancelled: &dyn Fn() -> bool) -> FuzzOutcome {
    let mut rng = SplitMix64::new(cfg.seed ^ 0x17F2_0070_F22D_2007);
    let mut map = CoverageMap::new();
    let mut corpus = Corpus::new(cfg.corpus_cap);
    let mut out = FuzzOutcome::default();
    let mut finding_ids: Vec<(OracleKind, u64)> = Vec::new();

    // Seed from the workload suite: evaluate for coverage, retain all.
    if !cfg.skip_seeding {
        for seed_case in seed_corpus(cfg.seed, cfg.mimic_seed_instrs) {
            if cancelled() {
                break;
            }
            let eval = oracle::evaluate(&seed_case, &cfg.oracle, false, &mut rng);
            map.observe(&eval.features);
            out.stats.golden_instrs += eval.golden_len as u64;
            out.stats.seeds += 1;
            record_findings(&seed_case, &eval.findings, cfg, &mut out, &mut finding_ids);
            corpus.push(seed_case);
        }
    }

    for iter in 0..cfg.iters {
        if cancelled() {
            break;
        }
        let case = if corpus.is_empty() || rng.gen_bool(cfg.fresh_ratio) {
            let target = 24 + rng.gen_range(0usize..64);
            mutate::fresh(&mut rng, target)
        } else {
            let parent = corpus.pick(&mut rng).cloned().expect("non-empty corpus");
            let donor = if rng.gen_bool(0.5) { corpus.pick(&mut rng).cloned() } else { None };
            mutate::mutate(&mut rng, &parent, donor.as_ref())
        };
        let with_faults = cfg.fault_every > 0 && iter % cfg.fault_every == 0;
        let eval = oracle::evaluate(&case, &cfg.oracle, with_faults, &mut rng);
        out.stats.golden_instrs += eval.golden_len as u64;
        out.stats.iterations += 1;
        if map.observe(&eval.features) > 0 {
            corpus.push(case.clone());
        }
        record_findings(&case, &eval.findings, cfg, &mut out, &mut finding_ids);
    }

    out.stats.coverage = map.covered();
    out.stats.corpus_len = corpus.len();
    out.stats.corpus_digest = corpus.digest();
    out
}

/// Shrinks and records findings, deduplicating by (oracle, shrunken
/// fingerprint) and respecting the findings cap.
fn record_findings(
    case: &FuzzCase,
    findings: &[oracle::Finding],
    cfg: &FuzzConfig,
    out: &mut FuzzOutcome,
    seen: &mut Vec<(OracleKind, u64)>,
) {
    for finding in findings {
        *out.stats.findings_by_oracle.entry(finding.kind.label()).or_insert(0) += 1;
        if out.findings.len() >= cfg.max_findings {
            continue;
        }
        let rc = shrink_finding(case, finding, cfg);
        let id = (rc.kind, rc.case.fingerprint());
        if seen.contains(&id) {
            continue;
        }
        seen.push(id);
        out.findings.push(rc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(seed: u64, iters: u64) -> FuzzConfig {
        FuzzConfig {
            oracle: OracleConfig { max_instrs: 400, fault_count: 1, window_cycles: 2000 },
            fault_every: 8,
            skip_seeding: true,
            ..FuzzConfig::quick(seed, iters)
        }
    }

    #[test]
    fn the_engine_is_deterministic() {
        let cfg = tiny_cfg(1, 24);
        let a = run(&cfg, &|| false);
        let b = run(&cfg, &|| false);
        assert_eq!(a.stats.corpus_digest, b.stats.corpus_digest);
        assert_eq!(a.stats_value(&cfg).to_json(), b.stats_value(&cfg).to_json());
        assert_eq!(a.findings.len(), b.findings.len());
    }

    #[test]
    fn coverage_and_corpus_grow() {
        let out = run(&tiny_cfg(2, 24), &|| false);
        assert_eq!(out.stats.iterations, 24);
        assert!(out.stats.coverage > 0);
        assert!(out.stats.corpus_len > 0);
        assert!(out.stats.golden_instrs > 0);
    }

    #[test]
    fn cancellation_stops_the_loop_early() {
        use std::cell::Cell;
        let calls = Cell::new(0u32);
        let out = run(&tiny_cfg(3, 1000), &|| {
            calls.set(calls.get() + 1);
            calls.get() > 5
        });
        assert!(out.stats.iterations <= 5);
    }

    #[test]
    fn seeding_pulls_in_the_workload_suite() {
        let cfg = FuzzConfig { skip_seeding: false, ..tiny_cfg(4, 0) };
        let out = run(&cfg, &|| false);
        assert!(out.stats.seeds >= 8, "expected suite seeds, got {}", out.stats.seeds);
        assert!(out.stats.corpus_len as u64 <= out.stats.seeds.max(cfg.corpus_cap as u64));
        assert!(
            out.findings.is_empty(),
            "workload seeds must pass the oracles: {:?}",
            out.findings.iter().map(|f| &f.detail).collect::<Vec<_>>()
        );
    }
}
