//! The fuzzing engine: seed, schedule, mutate, evaluate, retain, shrink,
//! sync.
//!
//! The engine is a persistent [`Fuzzer`] value (the service mode and the
//! harness's generation-barrier sync drive it incrementally); the
//! original batch entry point [`run`] is a thin wrapper over it.
//!
//! Fully deterministic for a fixed [`FuzzConfig`]: every random choice
//! flows from one `SplitMix64` stream, the fault-consistency oracle and
//! the snapshot capture run on fixed cadences, and the exported
//! statistics are built from ordered containers — two runs with the same
//! seed and budget produce byte-identical stats and findings.

use crate::case::FuzzCase;
use crate::corpus::{seed_corpus, Corpus, CorpusStats, RegressionCase};
use crate::coverage::CoverageMap;
use crate::directed::{self, DirectedPlan};
use crate::mutate;
use crate::oracle::{self, OracleConfig, OracleKind};
use crate::schedule::{PowerSchedule, Schedule};
use crate::shrink::shrink;
use crate::snapshot::snapshot_cases;
use crate::sync::SyncRecord;
use itr_stats::json::Value;
use itr_stats::SplitMix64;
use std::collections::{BTreeMap, BTreeSet};

/// Schema tag of the exported statistics document.
pub const STATS_SCHEMA: &str = "itr-fuzz-stats/v1";

/// Aggregate observed-edge set cap: once this many distinct
/// (branch_pc, dest_pc) edges are recorded, further inserts are dropped
/// (deterministically — the set serves gap *pruning*, so saturation
/// only makes plans conservative, never wrong).
const OBSERVED_EDGES_CAP: usize = 1 << 16;

/// Directed-plan cache bound; on overflow the cache is cleared whole
/// (deterministic, and stale plans against a grown observed set get
/// recomputed for free).
const GAP_PLAN_CAP: usize = 256;

/// Engine parameters.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; every random decision derives from it.
    pub seed: u64,
    /// Mutation/evaluation iterations (seed evaluations not counted).
    pub iters: u64,
    /// Oracle budgets.
    pub oracle: OracleConfig,
    /// Run the fault-consistency oracle every `fault_every`-th iteration.
    pub fault_every: u64,
    /// Maximum retained corpus entries.
    pub corpus_cap: usize,
    /// Dynamic size of the seeded SPEC2K mimics.
    pub mimic_seed_instrs: u64,
    /// Skip workload seeding (unit tests and shrink-replay paths).
    pub skip_seeding: bool,
    /// Probability of generating a fresh case instead of mutating.
    pub fresh_ratio: f64,
    /// Shrinker evaluation budget per finding.
    pub shrink_budget: usize,
    /// Stop recording findings past this many (the loop keeps running
    /// for coverage, but shrinking duplicates of a systemic bug is
    /// wasted work).
    pub max_findings: usize,
    /// Corpus selection policy.
    pub schedule: Schedule,
    /// Analysis-directed mutation: consult the `itr-gap/v1` plan of the
    /// picked parent and target its uncovered edges / never-formed
    /// traces instead of mutating blindly. Gap-closure accounting runs
    /// in *both* modes (the A/B currency must mean the same thing);
    /// only the mutation choice differs.
    pub directed: bool,
    /// Every `snapshot_every`-th iteration, materialize snapshot
    /// start-states from the most recent novelty-bearing case (0 = off).
    pub snapshot_every: u64,
    /// Snapshots materialized per cadence point.
    pub snapshot_max: usize,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seed: 1,
            iters: 1000,
            oracle: OracleConfig::default(),
            fault_every: 4,
            corpus_cap: 256,
            mimic_seed_instrs: 1500,
            skip_seeding: false,
            fresh_ratio: 0.15,
            shrink_budget: 48,
            max_findings: 8,
            schedule: Schedule::Power,
            directed: false,
            snapshot_every: 64,
            snapshot_max: 1,
        }
    }
}

impl FuzzConfig {
    /// A small configuration for smoke tests and the harness's quick
    /// scale: tight budgets, few iterations, cheap faults.
    pub fn quick(seed: u64, iters: u64) -> FuzzConfig {
        FuzzConfig {
            seed,
            iters,
            oracle: OracleConfig { max_instrs: 600, fault_count: 1, window_cycles: 2500 },
            fault_every: 8,
            corpus_cap: 64,
            mimic_seed_instrs: 500,
            snapshot_every: 32,
            ..FuzzConfig::default()
        }
    }
}

/// Aggregate statistics of one fuzzing run.
#[derive(Debug, Clone, Default)]
pub struct FuzzStats {
    /// Iterations executed (may stop early on cancellation).
    pub iterations: u64,
    /// Seed cases evaluated.
    pub seeds: u64,
    /// Total oracle evaluations: iterations + seeds + snapshot
    /// materializations + sync imports (the A/B currency).
    pub execs: u64,
    /// Coverage features lit.
    pub coverage: usize,
    /// Retained corpus size.
    pub corpus_len: usize,
    /// Order-insensitive digest of the retained corpus.
    pub corpus_digest: u64,
    /// Corpus growth/retention accounting.
    pub corpus: CorpusStats,
    /// Snapshot start-states materialized and evaluated.
    pub snapshot_cases: u64,
    /// Peer cases admitted through sync import.
    pub imported: u64,
    /// Total instructions the golden reference committed.
    pub golden_instrs: u64,
    /// Statically possible CFG edges that were open gaps in the parent's
    /// `itr-gap/v1` plan when a child first covered them (the directed
    /// A/B currency; counted identically in directed and blind modes).
    pub gap_closures: u64,
    /// Findings per oracle.
    pub findings_by_oracle: BTreeMap<&'static str, u64>,
}

impl FuzzStats {
    /// Total findings across oracles.
    pub fn findings(&self) -> u64 {
        self.findings_by_oracle.values().sum()
    }
}

/// Everything one run produced.
#[derive(Debug, Clone, Default)]
pub struct FuzzOutcome {
    /// Run statistics.
    pub stats: FuzzStats,
    /// Shrunken, deduplicated findings ready for persistence.
    pub findings: Vec<RegressionCase>,
    /// The retained corpus as sync records (what serve mode persists
    /// and what generation barriers exchange).
    pub corpus_records: Vec<SyncRecord>,
}

impl FuzzOutcome {
    /// The deterministic `itr-fuzz-stats/v1` export.
    pub fn stats_value(&self, cfg: &FuzzConfig) -> Value {
        let findings = self
            .stats
            .findings_by_oracle
            .iter()
            .map(|(k, v)| (k.to_string(), Value::UInt(*v)))
            .collect();
        Value::Object(vec![
            ("schema".to_string(), Value::Str(STATS_SCHEMA.to_string())),
            ("seed".to_string(), Value::UInt(cfg.seed)),
            ("schedule".to_string(), Value::Str(cfg.schedule.label().to_string())),
            ("iterations".to_string(), Value::UInt(self.stats.iterations)),
            ("seeds".to_string(), Value::UInt(self.stats.seeds)),
            ("execs".to_string(), Value::UInt(self.stats.execs)),
            ("coverage".to_string(), Value::UInt(self.stats.coverage as u64)),
            ("corpus_len".to_string(), Value::UInt(self.stats.corpus_len as u64)),
            (
                "corpus_digest".to_string(),
                Value::Str(format!("{:#018x}", self.stats.corpus_digest)),
            ),
            ("corpus_evictions".to_string(), Value::UInt(self.stats.corpus.evictions)),
            (
                "corpus_forced_evictions".to_string(),
                Value::UInt(self.stats.corpus.forced_evictions),
            ),
            ("corpus_duplicates".to_string(), Value::UInt(self.stats.corpus.duplicates)),
            (
                "corpus_sole_cover".to_string(),
                Value::UInt(self.stats.corpus.sole_cover_features as u64),
            ),
            ("corpus_mean_age".to_string(), Value::UInt(self.stats.corpus.mean_age)),
            ("corpus_max_age".to_string(), Value::UInt(self.stats.corpus.max_age)),
            ("snapshot_cases".to_string(), Value::UInt(self.stats.snapshot_cases)),
            ("imported".to_string(), Value::UInt(self.stats.imported)),
            ("golden_instrs".to_string(), Value::UInt(self.stats.golden_instrs)),
            ("directed".to_string(), Value::Bool(cfg.directed)),
            ("gap_closures".to_string(), Value::UInt(self.stats.gap_closures)),
            ("findings_total".to_string(), Value::UInt(self.stats.findings())),
            ("findings".to_string(), Value::Object(findings)),
        ])
    }
}

/// Shrinks one finding down to a minimal reproducer.
fn shrink_finding(case: &FuzzCase, finding: &oracle::Finding, cfg: &FuzzConfig) -> RegressionCase {
    let ocfg = cfg.oracle.clone();
    let mut reproduces: Box<dyn FnMut(&FuzzCase) -> bool> = match (finding.kind, finding.fault) {
        (OracleKind::FaultConsistency, Some(fault)) => {
            Box::new(move |c| oracle::replay_fault(c, fault, &ocfg).is_some())
        }
        (kind, _) => Box::new(move |c| {
            let mut rng = SplitMix64::new(0);
            oracle::evaluate(c, &ocfg, false, &mut rng).findings.iter().any(|f| f.kind == kind)
        }),
    };
    let small = shrink(case, cfg.shrink_budget, &mut reproduces);
    RegressionCase::new(small, finding, cfg.oracle.clone())
}

/// The persistent fuzzing engine: coverage map, scheduler state, corpus
/// and findings survive across [`Fuzzer::run_iters`] calls, so the serve
/// mode and the harness's generation-barrier sync can drive one campaign
/// incrementally.
pub struct Fuzzer {
    cfg: FuzzConfig,
    rng: SplitMix64,
    map: CoverageMap,
    power: PowerSchedule,
    corpus: Corpus,
    out: FuzzOutcome,
    finding_ids: Vec<(OracleKind, u64)>,
    iter: u64,
    pending_novel: Vec<SyncRecord>,
    last_novel: Option<FuzzCase>,
    /// Campaign-aggregate observed (branch_pc, dest_pc) edges — the
    /// compact dynamic side the gap engine diffs against, fed straight
    /// from `Evaluation::edges` (never re-derived from replays). All
    /// fuzz cases share the fixed text base, so the set acts as one
    /// AFL-style global edge map in PC space.
    observed: BTreeSet<(u64, u64)>,
    /// fingerprint → cached directed plan (see [`GAP_PLAN_CAP`]).
    gap_plans: BTreeMap<u64, DirectedPlan>,
    /// Gap edges already credited as closures (each counts once).
    closed_gaps: BTreeSet<(u64, u64)>,
}

impl Fuzzer {
    /// A fresh engine. Call [`seed`](Self::seed) before fuzzing unless
    /// `cfg.skip_seeding` is intended.
    pub fn new(cfg: FuzzConfig) -> Fuzzer {
        let rng = SplitMix64::new(cfg.seed ^ 0x17F2_0070_F22D_2007);
        let corpus = Corpus::new(cfg.corpus_cap);
        Fuzzer {
            cfg,
            rng,
            map: CoverageMap::new(),
            power: PowerSchedule::new(),
            corpus,
            out: FuzzOutcome::default(),
            finding_ids: Vec::new(),
            iter: 0,
            pending_novel: Vec::new(),
            last_novel: None,
            observed: BTreeSet::new(),
            gap_plans: BTreeMap::new(),
            closed_gaps: BTreeSet::new(),
        }
    }

    /// Evaluates and retains the workload-suite seed corpus (a no-op
    /// when `cfg.skip_seeding` is set).
    pub fn seed(&mut self, cancelled: &dyn Fn() -> bool) {
        if self.cfg.skip_seeding {
            return;
        }
        for seed_case in seed_corpus(self.cfg.seed, self.cfg.mimic_seed_instrs) {
            if cancelled() {
                break;
            }
            let eval = oracle::evaluate(&seed_case, &self.cfg.oracle, false, &mut self.rng);
            self.out.stats.golden_instrs += eval.golden_len as u64;
            self.out.stats.seeds += 1;
            self.out.stats.execs += 1;
            self.observe_edges(&eval.edges);
            self.record_findings(&seed_case, &eval.findings);
            self.admit(seed_case, &eval.features, 0);
        }
    }

    /// Folds one evaluation's observed edges into the campaign
    /// aggregate, dropping inserts past [`OBSERVED_EDGES_CAP`].
    fn observe_edges(&mut self, edges: &[(u64, u64)]) {
        for &e in edges {
            if self.observed.len() >= OBSERVED_EDGES_CAP {
                break;
            }
            self.observed.insert(e);
        }
    }

    /// The cached (or freshly computed) directed plan for a corpus
    /// entry: its own golden execution plus the campaign aggregate,
    /// diffed against its static universe and CFG.
    fn plan_for(&mut self, fingerprint: u64, case: &FuzzCase) -> DirectedPlan {
        if let Some(p) = self.gap_plans.get(&fingerprint) {
            return p.clone();
        }
        let budget = self.cfg.oracle.max_instrs.min(1200);
        let plan = directed::plan(case, &self.observed, budget);
        if self.gap_plans.len() >= GAP_PLAN_CAP {
            self.gap_plans.clear();
        }
        self.gap_plans.insert(fingerprint, plan.clone());
        plan
    }

    /// Observes an evaluation's features and retains the case when it
    /// lit something new (seeds and imports are retained regardless —
    /// they are novelty-bearing by construction on their side of the
    /// transport, and set-union keeps the sync merge order-insensitive).
    /// Returns whether the corpus changed.
    fn admit(&mut self, case: FuzzCase, features: &[u32], depth: u32) -> bool {
        let novel: Vec<u32> = features.iter().copied().filter(|&f| !self.map.is_seen(f)).collect();
        self.power.observe(features);
        self.map.observe(features);
        let keep = !novel.is_empty() || depth == 0;
        if !keep {
            return false;
        }
        let pushed = self.corpus.push_with(case.clone(), features.to_vec(), novel, depth);
        if pushed {
            self.pending_novel.push(SyncRecord { case: case.clone(), depth });
            self.last_novel = Some(case);
        }
        pushed
    }

    /// One mutation/evaluation iteration, plus the snapshot cadence.
    pub fn step(&mut self) {
        let mut parent_fp = None;
        let mut plan: Option<DirectedPlan> = None;
        let (case, depth) = if self.corpus.is_empty() || self.rng.gen_bool(self.cfg.fresh_ratio) {
            let target = 24 + self.rng.gen_range(0usize..64);
            (mutate::fresh(&mut self.rng, target), 0)
        } else {
            let (parent, depth) = match self.cfg.schedule {
                Schedule::Power => {
                    let e = self.power.pick(&self.corpus, &mut self.rng).expect("non-empty");
                    parent_fp = Some(e.fingerprint);
                    (e.case.clone(), e.depth)
                }
                Schedule::Uniform => {
                    let parent = self.corpus.pick(&mut self.rng).cloned().expect("non-empty");
                    parent_fp = Some(parent.fingerprint());
                    (parent, 0)
                }
            };
            // The plan is computed in both modes so `gap_closures`
            // measures the same quantity in the directed-vs-blind A/B;
            // only the mutation below consults it.
            let p = self.plan_for(parent_fp.unwrap_or(0), &parent);
            let donor = if self.rng.gen_bool(0.5) {
                self.corpus.pick(&mut self.rng).cloned()
            } else {
                None
            };
            let child = if self.cfg.directed {
                directed::directed_mutate(&mut self.rng, &parent, &p)
                    .unwrap_or_else(|| mutate::mutate(&mut self.rng, &parent, donor.as_ref()))
            } else {
                mutate::mutate(&mut self.rng, &parent, donor.as_ref())
            };
            plan = Some(p);
            (child, depth + 1)
        };
        let with_faults =
            self.cfg.fault_every > 0 && self.iter.is_multiple_of(self.cfg.fault_every);
        let eval = oracle::evaluate(&case, &self.cfg.oracle, with_faults, &mut self.rng);
        self.out.stats.golden_instrs += eval.golden_len as u64;
        self.out.stats.iterations += 1;
        self.out.stats.execs += 1;
        self.observe_edges(&eval.edges);
        if let Some(plan) = &plan {
            let newly: Vec<(u64, u64)> = eval
                .edges
                .iter()
                .copied()
                .filter(|e| plan.uncovered_edges.contains(e) && !self.closed_gaps.contains(e))
                .collect();
            if !newly.is_empty() {
                self.out.stats.gap_closures += newly.len() as u64;
                self.closed_gaps.extend(newly);
                if let Some(fp) = parent_fp {
                    self.power.reward_gap(fp);
                }
            }
        }
        self.record_findings(&case, &eval.findings);
        if self.admit(case, &eval.features, depth) {
            if let Some(fp) = parent_fp {
                self.power.reward(fp);
            }
        }
        self.iter += 1;

        if self.cfg.snapshot_every > 0 && self.iter.is_multiple_of(self.cfg.snapshot_every) {
            self.snapshot_round();
        }
    }

    /// Materializes snapshot start-states from the most recent
    /// novelty-bearing case and evaluates them like any other input.
    fn snapshot_round(&mut self) {
        let Some(src) = self.last_novel.take() else { return };
        for m in snapshot_cases(&src, self.cfg.oracle.max_instrs, self.cfg.snapshot_max) {
            if self.corpus.contains(m.fingerprint()) {
                continue;
            }
            let eval = oracle::evaluate(&m, &self.cfg.oracle, false, &mut self.rng);
            self.out.stats.golden_instrs += eval.golden_len as u64;
            self.observe_edges(&eval.edges);
            self.out.stats.execs += 1;
            self.out.stats.snapshot_cases += 1;
            self.record_findings(&m, &eval.findings);
            self.admit(m, &eval.features, 0);
        }
    }

    /// Runs up to `n` iterations, polling `cancelled` between them.
    /// Returns how many ran.
    pub fn run_iters(&mut self, n: u64, cancelled: &dyn Fn() -> bool) -> u64 {
        for done in 0..n {
            if cancelled() {
                return done;
            }
            self.step();
        }
        n
    }

    /// Imports peer sync records: already-retained fingerprints are
    /// skipped outright (making re-imports true no-ops), everything else
    /// is evaluated locally — the import both warms the local coverage
    /// map and checks the peer's case against this worker's oracles.
    /// Returns `(scanned, admitted)`.
    pub fn import(&mut self, records: &[SyncRecord]) -> (u64, u64) {
        let mut scanned = 0;
        let mut admitted = 0;
        for rec in records {
            if self.corpus.contains(rec.case.fingerprint()) {
                continue;
            }
            scanned += 1;
            let eval = oracle::evaluate(&rec.case, &self.cfg.oracle, false, &mut self.rng);
            self.out.stats.golden_instrs += eval.golden_len as u64;
            self.observe_edges(&eval.edges);
            self.out.stats.execs += 1;
            self.record_findings(&rec.case, &eval.findings);
            if self.admit(rec.case.clone(), &eval.features, 0) {
                admitted += 1;
                self.out.stats.imported += 1;
            }
        }
        (scanned, admitted)
    }

    /// Drains the cases retained since the last call — the worker's next
    /// sync export.
    pub fn take_novel(&mut self) -> Vec<SyncRecord> {
        std::mem::take(&mut self.pending_novel)
    }

    /// Everything retained right now, as sync records (for corpus
    /// persistence in serve mode).
    pub fn export_corpus(&self) -> Vec<SyncRecord> {
        self.corpus
            .entries()
            .iter()
            .map(|e| SyncRecord { case: e.case.clone(), depth: e.depth })
            .collect()
    }

    /// Coverage features lit so far.
    pub fn coverage(&self) -> usize {
        self.map.covered()
    }

    /// The campaign-aggregate observed (branch_pc, dest_pc) edge set —
    /// the compact export the gap engine diffs against, accumulated from
    /// every oracle evaluation rather than re-derived from replays.
    pub fn observed_edges(&self) -> &BTreeSet<(u64, u64)> {
        &self.observed
    }

    /// Gap closures credited so far (the directed A/B currency).
    pub fn gap_closures(&self) -> u64 {
        self.out.stats.gap_closures
    }

    /// Total oracle evaluations so far.
    pub fn execs(&self) -> u64 {
        self.out.stats.execs
    }

    /// Mutation iterations executed so far.
    pub fn iterations(&self) -> u64 {
        self.out.stats.iterations
    }

    /// The shrunken findings recorded so far.
    pub fn findings(&self) -> &[RegressionCase] {
        &self.out.findings
    }

    /// The retained corpus.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The engine configuration.
    pub fn config(&self) -> &FuzzConfig {
        &self.cfg
    }

    /// A point-in-time outcome (stats + findings so far).
    pub fn outcome(&self) -> FuzzOutcome {
        let mut out = self.out.clone();
        out.stats.coverage = self.map.covered();
        out.stats.corpus_len = self.corpus.len();
        out.stats.corpus_digest = self.corpus.digest();
        out.stats.corpus = self.corpus.stats();
        out.corpus_records = self.export_corpus();
        out
    }

    /// Consumes the engine into its final outcome.
    pub fn finish(self) -> FuzzOutcome {
        self.outcome()
    }

    /// Shrinks and records findings, deduplicating by (oracle, shrunken
    /// fingerprint) and respecting the findings cap.
    fn record_findings(&mut self, case: &FuzzCase, findings: &[oracle::Finding]) {
        for finding in findings {
            *self.out.stats.findings_by_oracle.entry(finding.kind.label()).or_insert(0) += 1;
            if self.out.findings.len() >= self.cfg.max_findings {
                continue;
            }
            let rc = shrink_finding(case, finding, &self.cfg);
            let id = (rc.kind, rc.case.fingerprint());
            if self.finding_ids.contains(&id) {
                continue;
            }
            self.finding_ids.push(id);
            self.out.findings.push(rc);
        }
    }
}

/// Runs one batch fuzzing campaign. `cancelled` is polled between
/// iterations; a `true` return stops the loop early (the outcome
/// reflects the work done so far).
pub fn run(cfg: &FuzzConfig, cancelled: &dyn Fn() -> bool) -> FuzzOutcome {
    let mut fuzzer = Fuzzer::new(cfg.clone());
    fuzzer.seed(cancelled);
    fuzzer.run_iters(cfg.iters, cancelled);
    fuzzer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn tiny_cfg(seed: u64, iters: u64) -> FuzzConfig {
        FuzzConfig {
            oracle: OracleConfig { max_instrs: 400, fault_count: 1, window_cycles: 2000 },
            fault_every: 8,
            skip_seeding: true,
            ..FuzzConfig::quick(seed, iters)
        }
    }

    #[test]
    fn the_engine_is_deterministic() {
        let cfg = tiny_cfg(1, 24);
        let a = run(&cfg, &|| false);
        let b = run(&cfg, &|| false);
        assert_eq!(a.stats.corpus_digest, b.stats.corpus_digest);
        assert_eq!(a.stats_value(&cfg).to_json(), b.stats_value(&cfg).to_json());
        assert_eq!(a.findings.len(), b.findings.len());
    }

    #[test]
    fn uniform_schedule_is_also_deterministic() {
        let cfg = FuzzConfig { schedule: Schedule::Uniform, ..tiny_cfg(5, 24) };
        let a = run(&cfg, &|| false);
        let b = run(&cfg, &|| false);
        assert_eq!(a.stats_value(&cfg).to_json(), b.stats_value(&cfg).to_json());
    }

    #[test]
    fn coverage_and_corpus_grow() {
        let out = run(&tiny_cfg(2, 24), &|| false);
        assert_eq!(out.stats.iterations, 24);
        assert!(out.stats.coverage > 0);
        assert!(out.stats.corpus_len > 0);
        assert!(out.stats.golden_instrs > 0);
        assert!(out.stats.execs >= out.stats.iterations);
    }

    #[test]
    fn cancellation_stops_the_loop_early() {
        use std::cell::Cell;
        let calls = Cell::new(0u32);
        let out = run(&tiny_cfg(3, 1000), &|| {
            calls.set(calls.get() + 1);
            calls.get() > 5
        });
        assert!(out.stats.iterations <= 5);
    }

    #[test]
    fn seeding_pulls_in_the_workload_suite() {
        let cfg = FuzzConfig { skip_seeding: false, ..tiny_cfg(4, 0) };
        let out = run(&cfg, &|| false);
        assert!(out.stats.seeds >= 8, "expected suite seeds, got {}", out.stats.seeds);
        assert!(out.stats.corpus_len as u64 <= out.stats.seeds.max(cfg.corpus_cap as u64));
        assert!(
            out.findings.is_empty(),
            "workload seeds must pass the oracles: {:?}",
            out.findings.iter().map(|f| &f.detail).collect::<Vec<_>>()
        );
    }

    #[test]
    fn import_merge_is_idempotent_and_commutative() {
        // Two workers diverge, then exchange exports. Union of retained
        // fingerprints must be order-insensitive and re-import a no-op.
        let mk = |seed| {
            let mut f = Fuzzer::new(FuzzConfig { corpus_cap: 512, ..tiny_cfg(seed, 12) });
            f.run_iters(12, &|| false);
            f
        };
        let mut a = mk(10);
        let mut b = mk(11);
        let ex_a = a.export_corpus();
        let ex_b = b.export_corpus();

        let (_, admitted_ab) = a.import(&ex_b);
        let (_, admitted_ba) = b.import(&ex_a);
        assert!(admitted_ab > 0 && admitted_ba > 0, "workers had something to trade");
        assert_eq!(a.corpus().digest(), b.corpus().digest(), "A∪B == B∪A");

        // Re-importing the same export changes nothing and costs nothing.
        let execs_before = a.execs();
        let (scanned, admitted) = a.import(&ex_b);
        assert_eq!((scanned, admitted), (0, 0), "re-import is a no-op");
        assert_eq!(a.execs(), execs_before, "no-op import consumes no execs");
        assert_eq!(a.corpus().digest(), b.corpus().digest());
    }

    #[test]
    fn take_novel_drains_retained_cases() {
        let mut f = Fuzzer::new(tiny_cfg(6, 8));
        f.run_iters(8, &|| false);
        let first = f.take_novel();
        assert!(!first.is_empty(), "early iterations always find novelty");
        assert!(f.take_novel().is_empty(), "drained");
        for rec in &first {
            assert!(f.corpus().contains(rec.case.fingerprint()));
        }
    }

    #[test]
    fn directed_mode_is_deterministic_and_closes_gaps() {
        let cfg = FuzzConfig { directed: true, ..tiny_cfg(8, 32) };
        let a = run(&cfg, &|| false);
        let b = run(&cfg, &|| false);
        assert_eq!(a.stats_value(&cfg).to_json(), b.stats_value(&cfg).to_json());
        assert!(a.stats.gap_closures > 0, "directed mode must close some gaps in 32 iters");
    }

    #[test]
    fn gap_accounting_runs_in_blind_mode_too() {
        // The A/B currency must be measured identically with directed
        // mutation off — otherwise the comparison is meaningless.
        let mut f = Fuzzer::new(tiny_cfg(9, 48));
        f.run_iters(48, &|| false);
        assert!(!f.observed_edges().is_empty(), "edges aggregate from every evaluation");
        // gap_closures may legitimately be zero this early; the stat
        // must at least be exported.
        let cfg = f.config().clone();
        let out = f.finish();
        assert!(out.stats_value(&cfg).to_json().contains("\"gap_closures\":"));
    }

    #[test]
    fn snapshot_cadence_materializes_start_states() {
        // A dense cadence over a seeded loop-heavy corpus must produce
        // snapshot cases within a modest budget.
        let mut f =
            Fuzzer::new(FuzzConfig { snapshot_every: 4, snapshot_max: 2, ..tiny_cfg(7, 40) });
        // Seed one loop-rich case directly.
        let case = gen::generate(&mut SplitMix64::new(77), 48);
        let eval = oracle::evaluate(&case, &f.cfg.oracle, false, &mut SplitMix64::new(0));
        f.admit(case, &eval.features, 0);
        f.run_iters(40, &|| false);
        let out = f.finish();
        assert!(out.stats.snapshot_cases > 0, "cadence must fire");
        assert!(out.findings.is_empty(), "snapshot cases must be oracle-clean");
    }
}
