//! # itr-fuzz — coverage-guided differential fuzzing of the simulator
//! and ITR detection stack
//!
//! The reproduction's correctness rests on three pillars this crate
//! attacks continuously:
//!
//! 1. the cycle-level pipeline commits the same architectural stream as
//!    the functional reference ([`oracle::OracleKind::CommitEquivalence`]),
//! 2. trace signatures are a pure function of trace identity
//!    ([`oracle::OracleKind::SignatureDeterminism`] — the invariant the
//!    whole ITR scheme stands on), and
//! 3. the §4 fault classifier agrees with architectural ground truth
//!    ([`oracle::OracleKind::FaultConsistency`]).
//!
//! The engine ([`engine::run`]) generates structure-aware `rISA`
//! programs ([`gen`]), mutates them ([`mutate`]), and retains any case
//! that lights a new feature in the novelty map ([`coverage`]) built
//! from opcode pairs, branch outcomes, `itr-stats` pipeline telemetry,
//! and ITR-unit events. Violations are delta-debugged to minimal
//! reproducers ([`shrink`]) and persisted as replayable JSON documents
//! ([`corpus::RegressionCase`]) under `tests/fuzz_regressions/`.
//!
//! Beyond batch runs, the crate is a *persistent fuzzing service*: an
//! energy-weighted power scheduler ([`schedule`]) replaces uniform
//! corpus selection, workers exchange novelty through the
//! `itr-fuzz-sync/v1` transport ([`sync`]), mid-execution simulator
//! snapshots are materialized into self-contained start-state cases
//! ([`snapshot`]), and `itr-fuzz serve` ([`server`]) runs a long-lived
//! campaign behind a small std-only HTTP status endpoint.
//!
//! The static analyzer closes the loop from the other side: in
//! `--directed` mode the coverage-gap report of `itr_analyze::gap`
//! plans branch flips and never-formed-trace synthesis ([`directed`]),
//! and gap closures feed the power scheduler as a high-weight energy
//! signal (`itr-fuzz gap-ab` races directed against blind mutation).
//!
//! Everything is deterministic per seed — `itr-fuzz run --seed 1
//! --iters 5000` twice yields byte-identical statistics and findings.

// Tests opt back out of the workspace `unwrap_used` deny: panicking on
// a broken expectation is exactly what a test should do.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod case;
pub mod corpus;
pub mod coverage;
pub mod diag;
pub mod directed;
pub mod engine;
pub mod gen;
pub mod mutate;
pub mod oracle;
pub mod schedule;
pub mod server;
pub mod shrink;
pub mod snapshot;
pub mod sync;

pub use case::{FuzzCase, CASE_SCHEMA};
pub use corpus::{seed_corpus, Corpus, CorpusEntry, CorpusStats, RegressionCase, FINDING_SCHEMA};
pub use coverage::{CoverageMap, MAP_SIZE};
pub use diag::{first_divergence, Divergence};
pub use directed::{directed_mutate, BranchGoal, DirectedPlan, GAP_LENS};
pub use engine::{run, FuzzConfig, FuzzOutcome, FuzzStats, Fuzzer, STATS_SCHEMA};
pub use oracle::{evaluate, replay_fault, Evaluation, Finding, OracleConfig, OracleKind};
pub use schedule::{PowerSchedule, Schedule};
pub use server::{serve, ServeConfig, SERVE_SCHEMA};
pub use shrink::{shrink, DEFAULT_BUDGET};
pub use snapshot::{materialize, snapshot_cases, MAX_DELTA_WORDS};
pub use sync::{SyncRecord, SYNC_SCHEMA};
