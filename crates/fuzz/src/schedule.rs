//! Power scheduling: energy-weighted corpus selection.
//!
//! The uniform `Corpus::pick` treats a seed that lit one common feature
//! the same as one that discovered a rare ITR-event bucket. The power
//! scheduler (AFL-style) instead assigns each retained entry an integer
//! *energy* and picks proportionally to it:
//!
//! ```text
//!            ( BASE + max_{f ∈ feat(e)} RARITY_SCALE / hits(f)
//!                   + DEPTH_UNIT · min(depth(e), DEPTH_CAP)
//!                   + SIZE_SCALE / (SIZE_PIVOT + |text(e)|) )
//!                   · (1 + 2·wins(e) + GAP_WIN_WEIGHT·gap_wins(e))
//! energy(e) = ───────────────────────────────────────────────────────────────
//!                                  1 + picks(e)
//! ```
//!
//! * **rarity** — `hits(f)` counts how many evaluations (not just
//!   retained cases) have lit feature `f` so far; an entry whose rarest
//!   exhibited behavior stays rarely re-observed keeps a high energy,
//!   while behaviors the whole corpus re-lights every iteration decay
//!   toward nothing.
//! * **depth** — deeper mutation chains get a modest boost (they sit at
//!   the frontier the uniform engine under-samples).
//! * **brevity** — smaller cases mutate and evaluate faster, so ties
//!   break toward them.
//! * **yield feedback** — each pick divides an entry's energy away
//!   (AFL-fast style), and each retained child multiplies it back:
//!   uniform selection over-samples lucky entries and starves late
//!   arrivals, while the discount walks the whole frontier and then
//!   concentrates on the parents whose mutants actually produce novelty.
//! * **gap closure** — a parent whose child covered a statically
//!   possible but never-observed CFG edge (per the `itr-gap/v1` report)
//!   gets a stronger multiplier than an ordinary novelty win: closing a
//!   known static↔dynamic gap is rarer and more valuable than relighting
//!   the feature map, so those parents stay hot longest.
//!
//! Everything is u64 integer arithmetic and the draw comes from the
//! engine's single `SplitMix64` stream, so fixed-seed reruns pick the
//! identical sequence — the determinism bar every fuzz artifact in this
//! repo is held to.

use crate::corpus::{Corpus, CorpusEntry};
use crate::coverage::MAP_SIZE;
use itr_stats::SplitMix64;
use std::collections::BTreeMap;

/// Baseline energy: no entry starves.
const BASE: u64 = 16;
/// Rarity numerator: a feature observed once contributes this much.
const RARITY_SCALE: u64 = 256;
/// Energy per depth level.
const DEPTH_UNIT: u64 = 8;
/// Depth levels past this stop adding energy.
const DEPTH_CAP: u32 = 8;
/// Brevity numerator and pivot (in text instructions).
const SIZE_SCALE: u64 = 1024;
const SIZE_PIVOT: u64 = 16;
/// Multiplier per gap-closing child — twice an ordinary novelty win,
/// because a closed static↔dynamic gap is strictly rarer.
const GAP_WIN_WEIGHT: u64 = 4;

/// Which selection policy the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// Energy-weighted selection (the default).
    #[default]
    Power,
    /// Uniform selection (the pre-service engine; kept as the A/B
    /// baseline the scheduler is measured against).
    Uniform,
}

impl Schedule {
    /// Stable label for stats exports and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            Schedule::Power => "power",
            Schedule::Uniform => "uniform",
        }
    }

    /// Parses a CLI label.
    pub fn from_label(s: &str) -> Option<Schedule> {
        match s {
            "power" => Some(Schedule::Power),
            "uniform" => Some(Schedule::Uniform),
            _ => None,
        }
    }
}

/// Global per-feature observation counts, per-entry pick/win counts,
/// and the weighted pick.
#[derive(Debug, Clone)]
pub struct PowerSchedule {
    hits: Vec<u32>,
    /// fingerprint → times picked as a mutation parent (probed per
    /// entry, never iterated, so selection stays order-independent).
    picks: BTreeMap<u64, u32>,
    /// fingerprint → times a pick of this parent yielded a retained
    /// (novelty-bearing) child.
    wins: BTreeMap<u64, u32>,
    /// fingerprint → times a pick of this parent yielded a child that
    /// closed an open coverage gap (covered a statically possible CFG
    /// edge never observed before).
    gap_wins: BTreeMap<u64, u32>,
}

impl Default for PowerSchedule {
    fn default() -> PowerSchedule {
        PowerSchedule::new()
    }
}

impl PowerSchedule {
    /// An empty scheduler over the full feature space.
    pub fn new() -> PowerSchedule {
        PowerSchedule {
            hits: vec![0; MAP_SIZE],
            picks: BTreeMap::new(),
            wins: BTreeMap::new(),
            gap_wins: BTreeMap::new(),
        }
    }

    /// Credits parent `fingerprint` for a retained (novelty-bearing)
    /// child — the yield feedback that keeps productive parents hot.
    pub fn reward(&mut self, fingerprint: u64) {
        *self.wins.entry(fingerprint).or_insert(0) += 1;
    }

    /// Credits parent `fingerprint` for a child that closed an open
    /// coverage gap — the analysis-directed energy signal, weighted
    /// above an ordinary novelty win.
    pub fn reward_gap(&mut self, fingerprint: u64) {
        *self.gap_wins.entry(fingerprint).or_insert(0) += 1;
    }

    /// Records every feature one evaluation lit (saturating).
    pub fn observe(&mut self, features: &[u32]) {
        for &f in features {
            if let Some(h) = self.hits.get_mut(f as usize) {
                *h = h.saturating_add(1);
            }
        }
    }

    /// Times feature `f` has been observed across all evaluations.
    pub fn hits(&self, f: u32) -> u32 {
        self.hits.get(f as usize).copied().unwrap_or(0)
    }

    /// The energy of one corpus entry under the current hit counts.
    pub fn energy(&self, entry: &CorpusEntry) -> u64 {
        // Rarity is the entry's *rarest exhibited* feature — its whole
        // behavior set, not just its first-lit novelty claim. A max, not
        // a sum: early entries light hundreds of features and a sum
        // would let them dominate selection forever, while the max decays
        // as the rare behavior's neighborhood gets mined. Falls back to
        // `novel` for entries carrying no feature metadata.
        let pool = if entry.features.is_empty() { &entry.novel } else { &entry.features };
        let rarity: u64 =
            pool.iter().map(|&f| RARITY_SCALE / u64::from(self.hits(f).max(1))).max().unwrap_or(0);
        let depth = DEPTH_UNIT * u64::from(entry.depth.min(DEPTH_CAP));
        let brevity = SIZE_SCALE / (SIZE_PIVOT + entry.case.text.len() as u64);
        // Yield feedback: picks without retained children mill an
        // entry's energy away; every novelty-bearing child restores it.
        // Unpicked entries keep full energy, so fresh corpus arrivals
        // are explored before anything is re-mined.
        let picked = u64::from(self.picks.get(&entry.fingerprint).copied().unwrap_or(0));
        let wins = u64::from(self.wins.get(&entry.fingerprint).copied().unwrap_or(0));
        let gap_wins = u64::from(self.gap_wins.get(&entry.fingerprint).copied().unwrap_or(0));
        ((BASE + rarity + depth + brevity) * (1 + 2 * wins + GAP_WIN_WEIGHT * gap_wins)
            / (1 + picked))
            .max(1)
    }

    /// Energy-weighted deterministic pick, or `None` when the corpus is
    /// empty; the winner's pick count is bumped (the discount term).
    /// O(corpus) per pick — negligible next to one oracle evaluation
    /// (two full simulations plus the pipeline).
    pub fn pick<'a>(
        &mut self,
        corpus: &'a Corpus,
        rng: &mut SplitMix64,
    ) -> Option<&'a CorpusEntry> {
        let entries = corpus.entries();
        if entries.is_empty() {
            return None;
        }
        let energies: Vec<u64> = entries.iter().map(|e| self.energy(e)).collect();
        let mut draw = rng.gen_range(0..energies.iter().sum::<u64>());
        let mut winner = entries.last()?;
        for (entry, &e) in entries.iter().zip(&energies) {
            if draw < e {
                winner = entry;
                break;
            }
            draw -= e;
        }
        *self.picks.entry(winner.fingerprint).or_insert(0) += 1;
        Some(winner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn corpus_of(specs: &[(u64, Vec<u32>, u32)]) -> Corpus {
        let mut c = Corpus::new(64);
        for (seed, novel, depth) in specs {
            let case = gen::generate(&mut SplitMix64::new(*seed), 20);
            assert!(c.push_with(case, novel.clone(), novel.clone(), *depth));
        }
        c
    }

    #[test]
    fn fixed_seed_pick_sequence_is_identical() {
        let c = corpus_of(&[(1, vec![5], 0), (2, vec![9], 2), (3, vec![], 5)]);
        let mut s = PowerSchedule::new();
        s.observe(&[5, 9, 9, 9, 9]);
        let picks = |seed: u64| -> Vec<u64> {
            let mut s = s.clone();
            let mut rng = SplitMix64::new(seed);
            (0..64).map(|_| s.pick(&c, &mut rng).expect("non-empty").case.fingerprint()).collect()
        };
        assert_eq!(picks(42), picks(42), "same seed, same sequence");
        assert_ne!(picks(42), picks(43), "different seed explores differently");
    }

    #[test]
    fn rare_novelty_attracts_energy() {
        let c = corpus_of(&[(1, vec![5], 0), (2, vec![9], 0)]);
        let mut s = PowerSchedule::new();
        // Feature 5 observed once (rare); feature 9 re-observed often.
        s.observe(&[5]);
        for _ in 0..200 {
            s.observe(&[9]);
        }
        let rare = c.entries()[0].case.fingerprint();
        assert!(
            s.energy(&c.entries()[0]) > 2 * s.energy(&c.entries()[1]),
            "rare {} vs common {}",
            s.energy(&c.entries()[0]),
            s.energy(&c.entries()[1])
        );
        // The weighted pick prefers the rare entry until the pick
        // discount has milled its advantage away.
        let mut rng = SplitMix64::new(1);
        let mut rare_picks = 0;
        for _ in 0..10 {
            if s.pick(&c, &mut rng).expect("non-empty").case.fingerprint() == rare {
                rare_picks += 1;
            }
        }
        assert!(rare_picks > 5, "rare entry picked {rare_picks}/10 early picks");
    }

    #[test]
    fn pick_discount_walks_the_whole_frontier() {
        // Eight equal-energy entries: within the first two sweeps of the
        // discount every entry must have been picked at least once —
        // uniform selection at these odds would almost surely starve one.
        let c = corpus_of(&(1..=8).map(|s| (s, vec![], 0)).collect::<Vec<_>>());
        let mut s = PowerSchedule::new();
        let mut rng = SplitMix64::new(3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..16 {
            seen.insert(s.pick(&c, &mut rng).expect("non-empty").case.fingerprint());
        }
        assert_eq!(seen.len(), 8, "every entry visited within two sweeps");
    }

    #[test]
    fn depth_and_brevity_contribute() {
        let c = corpus_of(&[(1, vec![], 0), (2, vec![], 6)]);
        let s = PowerSchedule::new();
        let shallow = s.energy(&c.entries()[0]);
        let deep = s.energy(&c.entries()[1]);
        assert!(deep > shallow, "depth boost missing: {deep} vs {shallow}");
        assert!(shallow >= BASE, "baseline energy present");
    }

    #[test]
    fn gap_closure_outweighs_an_ordinary_win() {
        let c = corpus_of(&[(1, vec![], 0), (2, vec![], 0)]);
        let mut s = PowerSchedule::new();
        s.reward(c.entries()[0].fingerprint);
        s.reward_gap(c.entries()[1].fingerprint);
        assert!(
            s.energy(&c.entries()[1]) > s.energy(&c.entries()[0]),
            "gap win {} should beat ordinary win {}",
            s.energy(&c.entries()[1]),
            s.energy(&c.entries()[0])
        );
    }

    #[test]
    fn empty_corpus_yields_none() {
        let c = Corpus::new(4);
        let mut s = PowerSchedule::new();
        let mut rng = SplitMix64::new(1);
        assert!(s.pick(&c, &mut rng).is_none());
    }
}
