//! Corpus sync across fuzz workers: the `itr-fuzz-sync/v1` JSONL format.
//!
//! Each worker periodically exports the novelty-bearing cases it has
//! retained as one JSON document per line:
//!
//! ```json
//! {"schema":"itr-fuzz-sync/v1","fingerprint":"0x…","depth":N,"case":{…}}
//! ```
//!
//! and, at generation boundaries, imports its peers' exports. Two
//! properties make the merge safe in any order:
//!
//! * **idempotence** — an imported case is admitted through the same
//!   fingerprint-dedup path as local novelty, so re-importing the same
//!   export is a no-op;
//! * **commutativity** — the corpus digest is an XOR fold over retained
//!   fingerprints, so merging A's cases into B and B's into A yield
//!   corpora with equal digests (capacity permitting).
//!
//! Two transports share the format: the harness's `fuzz-service` family
//! passes export *payloads* through the job blackboard (deterministic
//! generation barriers), while `itr-fuzz serve` workers exchange
//! `shard-N.jsonl` files in a `--sync-dir` (written atomically via
//! rename so a reader never sees a torn file).

use crate::case::FuzzCase;
use itr_stats::json::Value;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Schema tag of the sync line format.
pub const SYNC_SCHEMA: &str = "itr-fuzz-sync/v1";

/// One exported case with the metadata its importer needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncRecord {
    /// The novelty-bearing case.
    pub case: FuzzCase,
    /// The exporter's mutation depth for the case (so the importer's
    /// scheduler sees the same frontier position).
    pub depth: u32,
}

impl SyncRecord {
    /// Serializes to one `itr-fuzz-sync/v1` JSONL line (no newline).
    pub fn to_line(&self) -> String {
        Value::Object(vec![
            ("schema".to_string(), Value::Str(SYNC_SCHEMA.to_string())),
            ("fingerprint".to_string(), Value::Str(format!("{:#018x}", self.case.fingerprint()))),
            ("depth".to_string(), Value::UInt(u64::from(self.depth))),
            ("case".to_string(), self.case.to_value()),
        ])
        .to_json()
    }

    /// Parses one line, verifying the embedded fingerprint against the
    /// reconstructed case (an integrity check across transports).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field, unsupported
    /// schema, or fingerprint mismatch.
    pub fn from_line(line: &str) -> Result<SyncRecord, String> {
        let v = Value::parse(line).map_err(|e| format!("malformed JSON: {e:?}"))?;
        match v.get("schema").and_then(Value::as_str) {
            Some(SYNC_SCHEMA) => {}
            other => return Err(format!("unsupported sync schema {other:?}")),
        }
        let depth = v.get("depth").and_then(Value::as_u64).unwrap_or(0) as u32;
        let case = FuzzCase::from_value(v.get("case").ok_or("missing case")?)?;
        let want = v.get("fingerprint").and_then(Value::as_str).ok_or("missing fingerprint")?;
        let got = format!("{:#018x}", case.fingerprint());
        if want != got {
            return Err(format!("fingerprint mismatch: document says {want}, case is {got}"));
        }
        Ok(SyncRecord { case, depth })
    }
}

/// Renders records as a JSONL document (one line each, trailing newline).
pub fn render(records: &[SyncRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_line());
        out.push('\n');
    }
    out
}

/// Parses a JSONL document.
///
/// # Errors
///
/// Returns the first malformed line's index and error.
pub fn parse(text: &str) -> Result<Vec<SyncRecord>, String> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .enumerate()
        .map(|(i, l)| SyncRecord::from_line(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

/// The export file a worker owns inside a sync directory.
pub fn export_path(dir: &Path, worker: u32) -> PathBuf {
    dir.join(format!("shard-{worker}.jsonl"))
}

/// Atomically (write + rename) replaces worker `worker`'s export with
/// `records`. Peers reading concurrently see either the old or the new
/// file, never a torn one.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_export(dir: &Path, worker: u32, records: &[SyncRecord]) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let tmp = dir.join(format!(".shard-{worker}.tmp"));
    fs::write(&tmp, render(records))?;
    fs::rename(&tmp, export_path(dir, worker))
}

/// Reads every peer export in `dir` (all `shard-*.jsonl` except worker
/// `own`'s), in filename order for determinism. Unparseable files or
/// lines are skipped — a peer on a newer schema must not wedge the
/// campaign.
///
/// # Errors
///
/// Propagates directory-read errors; a missing directory reads as empty.
pub fn read_peers(dir: &Path, own: u32) -> io::Result<Vec<SyncRecord>> {
    let mut names: Vec<String> = match fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.starts_with("shard-") && n.ends_with(".jsonl"))
            .collect(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    names.sort();
    let own_name = format!("shard-{own}.jsonl");
    let mut out = Vec::new();
    for name in names {
        if name == own_name {
            continue;
        }
        let Ok(text) = fs::read_to_string(dir.join(&name)) else { continue };
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            if let Ok(rec) = SyncRecord::from_line(line) {
                out.push(rec);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use itr_stats::SplitMix64;

    fn records(seeds: &[u64]) -> Vec<SyncRecord> {
        seeds
            .iter()
            .map(|&s| SyncRecord {
                case: gen::generate(&mut SplitMix64::new(s), 24),
                depth: (s % 5) as u32,
            })
            .collect()
    }

    #[test]
    fn lines_round_trip() {
        for rec in records(&[1, 2, 3]) {
            let back = SyncRecord::from_line(&rec.to_line()).unwrap();
            assert_eq!(back, rec);
        }
        let recs = records(&[4, 5]);
        assert_eq!(parse(&render(&recs)).unwrap(), recs);
    }

    #[test]
    fn tampered_documents_are_rejected() {
        let rec = &records(&[1])[0];
        let tampered = rec
            .to_line()
            .replace(&format!("{:#018x}", rec.case.fingerprint()), "0x0000000000000bad");
        assert!(SyncRecord::from_line(&tampered).is_err(), "fingerprint mismatch must fail");
        assert!(SyncRecord::from_line("{}").is_err());
        assert!(SyncRecord::from_line("not json").is_err());
    }

    #[test]
    fn filesystem_exports_round_trip_and_skip_own() {
        let dir = std::env::temp_dir().join(format!("itr-fuzz-sync-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let a = records(&[1, 2]);
        let b = records(&[3]);
        write_export(&dir, 0, &a).unwrap();
        write_export(&dir, 1, &b).unwrap();
        // Worker 0 sees only worker 1's records and vice versa.
        assert_eq!(read_peers(&dir, 0).unwrap(), b);
        assert_eq!(read_peers(&dir, 1).unwrap(), a);
        // Rewriting an export replaces it (no duplication on disk).
        write_export(&dir, 1, &records(&[3, 4])).unwrap();
        assert_eq!(read_peers(&dir, 0).unwrap().len(), 2);
        // A missing dir reads as empty.
        let _ = fs::remove_dir_all(&dir);
        assert!(read_peers(&dir, 0).unwrap().is_empty());
    }
}
