//! Divergence diagnostics for FuncSim-vs-pipeline comparison.
//!
//! The equivalence oracle (and the `tests/equivalence.rs` guard) used to
//! assert bare stream equality, which on failure printed two opaque
//! `CommitRecord`s. This module locates the first divergent commit and
//! renders everything a human needs to debug it: the commit index, the
//! PC and disassembly on both sides, both commit records, and the two
//! architectural states — reconstructed by replaying each committed
//! stream's register writebacks — with a register-level diff.

use itr_isa::Program;
use itr_sim::{ArchState, CommitRecord};
use std::fmt;

/// The first point where two committed streams disagree.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Index of the first divergent commit.
    pub index: usize,
    /// The golden (functional-simulator) record, if the golden stream
    /// reaches this index.
    pub golden: Option<CommitRecord>,
    /// The other (pipeline) record, if its stream reaches this index.
    pub actual: Option<CommitRecord>,
    /// Golden architectural state immediately *before* the divergent
    /// commit.
    pub golden_state: ArchState,
    /// Actual architectural state immediately before the divergent
    /// commit.
    pub actual_state: ArchState,
    /// Disassembly of the instruction at the golden record's PC.
    pub golden_disasm: String,
    /// Disassembly of the instruction at the actual record's PC.
    pub actual_disasm: String,
}

/// Replays the register writebacks of `records[..upto]` from the reset
/// state, reconstructing the architectural state just before commit
/// `upto`.
fn replay(program: &Program, records: &[CommitRecord], upto: usize) -> ArchState {
    let mut a = ArchState::new(program.entry());
    a.set_int_reg(29, itr_isa::STACK_TOP as u32);
    for r in &records[..upto.min(records.len())] {
        if let Some((dst, value)) = r.dst {
            a.set_reg(dst, value);
        }
        a.pc = r.next_pc;
    }
    a
}

fn disasm_at(program: &Program, record: Option<&CommitRecord>) -> String {
    match record {
        None => "<stream ended>".to_string(),
        Some(r) => match program.instruction_at(r.pc) {
            Some(inst) => inst.to_string(),
            None => "<outside text segment>".to_string(),
        },
    }
}

/// Locates the first divergent commit between `golden` and `actual`, or
/// `None` when the streams are identical (same records, same length).
pub fn first_divergence(
    program: &Program,
    golden: &[CommitRecord],
    actual: &[CommitRecord],
) -> Option<Divergence> {
    let index = golden
        .iter()
        .zip(actual.iter())
        .position(|(g, a)| g != a)
        .or_else(|| (golden.len() != actual.len()).then(|| golden.len().min(actual.len())))?;
    Some(Divergence {
        index,
        golden: golden.get(index).copied(),
        actual: actual.get(index).copied(),
        golden_state: replay(program, golden, index),
        actual_state: replay(program, actual, index),
        golden_disasm: disasm_at(program, golden.get(index)),
        actual_disasm: disasm_at(program, actual.get(index)),
    })
}

fn reg_name(idx: u16) -> String {
    match idx {
        0..=31 => format!("r{idx}"),
        32..=63 => format!("f{}", idx - 32),
        _ => "fcc".to_string(),
    }
}

fn fmt_record(r: Option<&CommitRecord>) -> String {
    r.map(|r| r.to_string()).unwrap_or_else(|| "<stream ended>".to_string())
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "first divergent commit: #{}", self.index)?;
        writeln!(f, "  golden: {}  [{}]", fmt_record(self.golden.as_ref()), self.golden_disasm)?;
        writeln!(f, "  actual: {}  [{}]", fmt_record(self.actual.as_ref()), self.actual_disasm)?;
        writeln!(
            f,
            "  arch state before the commit (golden pc={:#010x}, actual pc={:#010x}):",
            self.golden_state.pc, self.actual_state.pc
        )?;
        let mut differing = 0;
        for idx in 0..itr_sim::NUM_ARCH_REGS as u16 {
            let (g, a) = (self.golden_state.reg(idx), self.actual_state.reg(idx));
            if g != a {
                writeln!(f, "    {:<4} golden={g:#010x} actual={a:#010x}", reg_name(idx))?;
                differing += 1;
            }
        }
        if differing == 0 {
            writeln!(f, "    registers identical — the divergence is within the commit itself")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itr_isa::asm::assemble;
    use itr_sim::FuncSim;

    fn stream(src: &str, n: u64) -> (Program, Vec<CommitRecord>) {
        let p = assemble(src).unwrap();
        let mut sim = FuncSim::new(&p);
        let (records, _) = sim.run_collect(n);
        (p, records)
    }

    const SRC: &str = "main:\n li r8, 3\n add r9, r8, r8\n add r10, r9, r8\n halt\n";

    #[test]
    fn identical_streams_have_no_divergence() {
        let (p, s) = stream(SRC, 100);
        assert!(first_divergence(&p, &s, &s).is_none());
    }

    #[test]
    fn record_level_divergence_is_located_and_rendered() {
        let (p, golden) = stream(SRC, 100);
        let mut actual = golden.clone();
        let i = actual.len() - 2;
        if let Some((_, v)) = &mut actual[i].dst {
            *v ^= 0x40;
        }
        let d = first_divergence(&p, &golden, &actual).expect("diverges");
        assert_eq!(d.index, i);
        let text = d.to_string();
        assert!(text.contains("first divergent commit"), "{text}");
        assert!(text.contains("golden:") && text.contains("actual:"), "{text}");
        assert!(text.contains("add "), "disassembly missing: {text}");
    }

    #[test]
    fn length_divergence_reports_the_truncated_side() {
        let (p, golden) = stream(SRC, 100);
        let actual = golden[..golden.len() - 1].to_vec();
        let d = first_divergence(&p, &golden, &actual).expect("diverges");
        assert_eq!(d.index, actual.len());
        assert!(d.actual.is_none());
        assert!(d.to_string().contains("<stream ended>"));
    }

    #[test]
    fn state_diff_shows_the_poisoned_register() {
        let (p, golden) = stream(SRC, 100);
        let mut actual = golden.clone();
        // Poison the writeback of an *earlier* commit so the replayed
        // states differ at the divergence point.
        if let Some((r, v)) = &mut actual[1].dst {
            assert_eq!(*r, 9, "second commit writes r9");
            *v = 0xDEAD;
        }
        let d = first_divergence(&p, &golden, &actual).expect("diverges");
        assert_eq!(d.index, 1, "divergence at the poisoned commit");
        // Diverge later instead: splice golden prefix so states differ.
        let mut late = golden.clone();
        if let Some((_, v)) = &mut late[1].dst {
            *v = 0xDEAD;
        }
        if let Some((_, v)) = &mut late[2].dst {
            *v = 0xBEEF;
        }
        let d = first_divergence(&p, &golden, &late).unwrap();
        let text = d.to_string();
        assert_eq!(d.index, 1);
        assert!(text.contains("registers identical"), "{text}");
    }
}
