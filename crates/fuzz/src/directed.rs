//! Analysis-directed mutation: the gap engine's report turned into
//! mutation targets.
//!
//! The undirected mutators grow coverage by chance; this stage closes
//! the static↔dynamic loop instead. For a corpus entry it asks
//! `itr_analyze::gap` which statically possible CFG edges and trace
//! starts the entry's own execution (plus the campaign's aggregate
//! observed-edge set) never reached, then:
//!
//! * **branch flipping** — each uncovered edge carries the dominator
//!   chain to its controlling conditional branches and the polarity each
//!   must take ([`itr_analyze::BranchPolarity`]). The mutator targets
//!   exactly those branches: it swaps the opcode for its polarity
//!   complement (`beq`↔`bne`, `blez`↔`bgtz`, `bltz`↔`bgez`,
//!   `bc1t`↔`bc1f`), grounds one compare operand to `r0`, or perturbs
//!   the immediate of the nearest preceding writer of a compare
//!   register — all far more likely to flip the branch than a random
//!   operand tweak somewhere in the program;
//! * **never-formed-trace synthesis** — a static trace start that never
//!   formed dynamically is usually a phase-alignment problem (execution
//!   passes the PC mid-trace, never at a boundary). Replacing the
//!   preceding instruction with an always-taken branch-to-next
//!   (`beq r0, r0, +0` — architecturally a nop, but a trace terminator)
//!   forces a trace boundary exactly there while every other address in
//!   the program stays put.
//!
//! All randomness flows from the engine's single `SplitMix64` stream and
//! the plan for a fixed `(case, observations)` pair is deterministic, so
//! directed campaigns replay byte-identically per seed.

use crate::case::FuzzCase;
use crate::gen;
use itr_analyze::{gap_report, GapObservations};
use itr_isa::{Instruction, Opcode};
use itr_stats::SplitMix64;
use std::collections::BTreeSet;

/// Trace-length configurations the directed stage diffs against — the
/// paper's evaluated set, matching the signature-determinism oracle.
pub const GAP_LENS: [u32; 3] = [4, 8, 16];

/// One actionable branch-polarity goal, in case coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchGoal {
    /// Index of the controlling conditional branch in `case.text`.
    pub branch_index: usize,
    /// The polarity the uncovered edge requires.
    pub want_taken: bool,
}

/// The directed plan for one case: where its coverage gaps are and
/// which instructions control them.
#[derive(Debug, Clone, Default)]
pub struct DirectedPlan {
    /// Deduplicated branch goals from every uncovered edge's dominator
    /// chain (the "walk the dominator chain to the controlling branch"
    /// step, precomputed by the gap engine's polarity metadata).
    pub goals: Vec<BranchGoal>,
    /// Text indices whose static trace start never formed dynamically.
    pub never_formed: Vec<usize>,
    /// Uncovered static CFG edges in PC space — the closure ledger the
    /// engine checks children against.
    pub uncovered_edges: BTreeSet<(u64, u64)>,
    /// Total open gaps (edges + loops + never-formed traces).
    pub open_gaps: u64,
}

impl DirectedPlan {
    /// `true` when the plan offers at least one directed move.
    pub fn actionable(&self) -> bool {
        !self.goals.is_empty() || !self.never_formed.is_empty()
    }
}

/// Computes the directed plan for `case`: runs its own golden execution
/// (bounded by `budget` instructions), folds in the campaign's
/// aggregate `observed` edges, and diffs against the static universe
/// and CFG.
pub fn plan(case: &FuzzCase, observed: &BTreeSet<(u64, u64)>, budget: u64) -> DirectedPlan {
    let program = case.program();
    let text_base = program.text_base();
    let mut obs = GapObservations::from_program(&program, budget, &GAP_LENS);
    obs.edges.extend(observed.iter().copied());
    let report = gap_report("case", &program, &GAP_LENS, &obs);

    let index_of = |pc: u64| -> Option<usize> {
        if pc < text_base || !pc.is_multiple_of(4) {
            return None;
        }
        let i = ((pc - text_base) / 4) as usize;
        (i < case.text.len()).then_some(i)
    };

    let mut goals: Vec<BranchGoal> = Vec::new();
    let mut uncovered_edges = BTreeSet::new();
    for g in &report.uncovered {
        uncovered_edges.insert((g.from_pc, g.to_pc));
        for p in &g.polarities {
            let Some(branch_index) = index_of(p.branch_pc) else { continue };
            if !case.text[branch_index].op.is_cond_branch() {
                continue;
            }
            let goal = BranchGoal { branch_index, want_taken: p.taken };
            if !goals.contains(&goal) {
                goals.push(goal);
            }
        }
    }
    let mut never_formed: Vec<usize> = Vec::new();
    for l in &report.lens {
        for &pc in &l.never_formed {
            // Index 0 has no preceding instruction to turn into a trace
            // boundary, and out-of-text starts are not addressable.
            let Some(i) = index_of(pc) else { continue };
            if i > 0 && !never_formed.contains(&i) {
                never_formed.push(i);
            }
        }
    }
    never_formed.sort_unstable();

    DirectedPlan { goals, never_formed, uncovered_edges, open_gaps: report.open_gaps() }
}

/// The polarity complement of a conditional-branch opcode.
fn complement(op: Opcode) -> Option<Opcode> {
    Some(match op {
        Opcode::Beq => Opcode::Bne,
        Opcode::Bne => Opcode::Beq,
        Opcode::Blez => Opcode::Bgtz,
        Opcode::Bgtz => Opcode::Blez,
        Opcode::Bltz => Opcode::Bgez,
        Opcode::Bgez => Opcode::Bltz,
        Opcode::Bc1t => Opcode::Bc1f,
        Opcode::Bc1f => Opcode::Bc1t,
        _ => return None,
    })
}

/// Flips the polarity of the goal branch: opcode complement, grounding
/// a compare operand, or perturbing the nearest preceding writer of a
/// compare register.
fn flip_branch(rng: &mut SplitMix64, case: &mut FuzzCase, goal: BranchGoal) {
    let i = goal.branch_index;
    let branch = case.text[i];
    match rng.gen_range(0u32..4) {
        0 => {
            if let Some(op) = complement(branch.op) {
                case.text[i].op = op;
                return;
            }
            case.text[i].rt = 0;
        }
        1 => {
            // Ground one compare operand: equality against r0 (or a
            // sign test of r0) takes the opposite arm for most live
            // register values.
            if rng.gen_bool(0.5) {
                case.text[i].rs = 0;
            } else {
                case.text[i].rt = 0;
            }
        }
        _ => {
            // Walk back to the instruction that computes the compare
            // input and perturb it — the concolic-lite move: mutate the
            // *operands feeding* the branch rather than the branch.
            let reg = if rng.gen_bool(0.5) && branch.rt != 0 { branch.rt } else { branch.rs };
            let writer = (0..i).rev().find(|&k| gen::writes_int_reg(&case.text[k], reg));
            match writer {
                Some(k) => {
                    let inst = &mut case.text[k];
                    inst.imm = match rng.gen_range(0u32..3) {
                        0 => 0,
                        1 => inst.imm.wrapping_neg(),
                        _ => rng.gen_range(0u64..0x1_0000) as i32 - 0x8000,
                    };
                }
                // No writer in range: seed one right before the branch.
                None => {
                    let imm = rng.gen_range(0u64..255) as i32 - 127;
                    case.text[i - i.min(1)] = Instruction::rri(Opcode::Addi, reg, 0, imm);
                }
            }
        }
    }
}

/// Forces a trace boundary immediately before text index `i` by
/// replacing the preceding instruction with an always-taken
/// branch-to-next (`beq r0, r0, +0`): any execution reaching `i` now
/// starts a trace there, while every other program address stays put.
fn force_trace_start(case: &mut FuzzCase, i: usize) {
    debug_assert!(i > 0);
    case.text[i - 1] = Instruction::branch(Opcode::Beq, 0, 0, 0);
}

/// One directed mutation of `base` under `plan`. Returns `None` when
/// the plan has nothing actionable (the engine falls back to the
/// undirected mutators).
pub fn directed_mutate(
    rng: &mut SplitMix64,
    base: &FuzzCase,
    plan: &DirectedPlan,
) -> Option<FuzzCase> {
    if !plan.actionable() {
        return None;
    }
    let mut case = base.clone();
    // Prefer branch flips (they chase uncovered edges); synthesize
    // never-formed trace starts on a minority of draws or when no
    // branch goal exists.
    let synthesize = plan.goals.is_empty() || (!plan.never_formed.is_empty() && rng.gen_bool(0.3));
    if synthesize {
        let i = plan.never_formed[rng.gen_range(0..plan.never_formed.len() as u64) as usize];
        if i < case.text.len() {
            force_trace_start(&mut case, i);
        }
    } else {
        let goal = plan.goals[rng.gen_range(0..plan.goals.len() as u64) as usize];
        if goal.branch_index < case.text.len() {
            flip_branch(rng, &mut case, goal);
        }
    }
    if !case.text.iter().any(|t| t.op == Opcode::Trap) {
        case.text.push(Instruction::trap(itr_isa::trap::HALT));
    }
    gen::sanitize(&mut case);
    Some(case)
}

#[cfg(test)]
mod tests {
    use super::*;
    use itr_sim::{FuncSim, StopReason};

    /// A case whose `beq r8, r0` guard never takes: li r8, 7 keeps the
    /// taken edge uncovered.
    fn guarded_case() -> FuzzCase {
        FuzzCase {
            text: vec![
                Instruction::rri(Opcode::Addi, 8, 0, 7),
                Instruction::branch(Opcode::Beq, 8, 0, 1),
                Instruction::rri(Opcode::Addi, 9, 9, 1),
                Instruction::trap(itr_isa::trap::HALT),
            ],
            data: Vec::new(),
            entry: 0,
        }
    }

    #[test]
    fn plan_finds_the_untaken_guard() {
        let case = guarded_case();
        let p = plan(&case, &BTreeSet::new(), 1000);
        assert!(p.actionable(), "plan: {p:?}");
        assert!(
            p.goals.contains(&BranchGoal { branch_index: 1, want_taken: true }),
            "goals: {:?}",
            p.goals
        );
        assert!(!p.uncovered_edges.is_empty());
    }

    #[test]
    fn plan_is_deterministic() {
        let case = guarded_case();
        let a = plan(&case, &BTreeSet::new(), 1000);
        let b = plan(&case, &BTreeSet::new(), 1000);
        assert_eq!(a.goals, b.goals);
        assert_eq!(a.uncovered_edges, b.uncovered_edges);
        assert_eq!(a.never_formed, b.never_formed);
    }

    #[test]
    fn directed_mutation_closes_the_guard_gap_quickly() {
        // Within a small number of directed tries, some child must
        // actually take the guarded branch — the edge the plan targets.
        let case = guarded_case();
        let p = plan(&case, &BTreeSet::new(), 1000);
        let want: Vec<(u64, u64)> = p.uncovered_edges.iter().copied().collect();
        let mut rng = SplitMix64::new(7);
        let mut closed = false;
        for _ in 0..16 {
            let Some(child) = directed_mutate(&mut rng, &case, &p) else { break };
            let program = child.program();
            let obs = GapObservations::from_program(&program, 1000, &GAP_LENS);
            if want.iter().any(|e| obs.edges.contains(e)) {
                closed = true;
                break;
            }
        }
        assert!(closed, "no directed child took the guarded edge; targets: {want:?}");
    }

    #[test]
    fn directed_children_still_halt() {
        let case = guarded_case();
        let p = plan(&case, &BTreeSet::new(), 1000);
        let mut rng = SplitMix64::new(3);
        for _ in 0..8 {
            let child = directed_mutate(&mut rng, &case, &p).expect("actionable");
            let mut sim = FuncSim::new(&child.program());
            let stop = sim.run(5_000);
            assert!(
                !matches!(stop, StopReason::DecodeError(_)),
                "directed mutation produced undecodable text"
            );
        }
    }

    #[test]
    fn forced_trace_start_preserves_layout_and_execution() {
        let mut case = guarded_case();
        force_trace_start(&mut case, 2);
        assert_eq!(case.text.len(), 4, "no instruction inserted or removed");
        assert_eq!(case.text[1].op, Opcode::Beq);
        assert_eq!((case.text[1].rs, case.text[1].rt, case.text[1].imm), (0, 0, 0));
        let mut sim = FuncSim::new(&case.program());
        assert_eq!(sim.run(100), StopReason::Halted, "beq r0,r0,+0 is a semantic nop");
    }

    #[test]
    fn fully_covered_case_has_no_plan() {
        let case = FuzzCase {
            text: vec![
                Instruction::rri(Opcode::Addi, 8, 0, 1),
                Instruction::trap(itr_isa::trap::HALT),
            ],
            data: Vec::new(),
            entry: 0,
        };
        let p = plan(&case, &BTreeSet::new(), 1000);
        assert!(!p.actionable(), "plan: {p:?}");
        let mut rng = SplitMix64::new(1);
        assert!(directed_mutate(&mut rng, &case, &p).is_none());
    }
}
