//! Snapshot start-states: materializing a mid-execution [`SimSnapshot`]
//! into a plain, self-contained [`FuzzCase`].
//!
//! Whole-program mutants spend most of their budget re-executing warm-up
//! code before reaching the loop bodies where the ITR machinery actually
//! works. A snapshot case skips the warm-up: the original text is kept
//! at its original addresses and a **restore prologue** is appended
//! after it, with the entry point moved to the prologue:
//!
//! ```text
//! [ original text … ][ restore prologue … j <snapshot pc> ]
//!                     ^ entry
//! ```
//!
//! The prologue rebuilds the captured architectural state in an order
//! that never reads a register before restoring it:
//!
//! 1. **FCC** via `c.eq.s f0, f0` while `f0` is still zero (`0.0 == 0.0`
//!    is true regardless of later FP restores — and doing it first avoids
//!    comparing restored registers that may hold NaN bits);
//! 2. **memory delta** — each word that differs from the fresh program
//!    image is stored through scratch registers `r9` (address) and `r8`
//!    (value);
//! 3. **FP registers** — bits loaded into `r8`, then `mtc1`;
//! 4. **integer registers** — each restored self-contained via
//!    `lui`+`addi` (always including `r29`, which the simulators
//!    initialize to the stack top, so a snapshot value of zero is
//!    restored too);
//! 5. a direct `j` to the snapshot PC.
//!
//! Because the original instructions keep their addresses, the resumed
//! execution commits exactly the original run's post-capture suffix, and
//! re-forms its traces — the materialized case is an ordinary `FuzzCase`
//! that every oracle, the shrinker and the JSON codec handle unchanged.
//!
//! The result deliberately does **not** go through [`crate::gen::sanitize`]:
//! the prologue's absolute-address stores replay only words the original
//! run itself wrote (and text-dirty snapshots are rejected), so the
//! store-safety invariant holds in spirit; sanitizing would repoint the
//! stores at the data-pointer register and break the restore. Mutants
//! *derived* from a snapshot case are sanitized as usual by the mutators.

use crate::case::FuzzCase;
use crate::mutate::MAX_TEXT;
use itr_core::MAX_TRACE_LEN;
use itr_isa::{Instruction, Opcode, TEXT_BASE};
use itr_sim::{capture_at_traces, count_traces, Memory, SimSnapshot};

/// Memory-delta budget: a snapshot dirtier than this many words would
/// blow the prologue (5 instructions per word) past what tight oracle
/// budgets can execute before reaching the interesting code.
pub const MAX_DELTA_WORDS: usize = 48;

/// Scratch registers the prologue loads through (restored afterwards by
/// the integer phase).
const SCRATCH_VAL: u8 = 8;
const SCRATCH_ADDR: u8 = 9;

/// Emits `dst = value` as `lui dst, hi'` + `addi dst, dst, lo`, where
/// `hi'` pre-compensates for `addi`'s sign-extending add when the low
/// half is ≥ 0x8000 (`ori` cannot be used: it ORs the *sign-extended*
/// immediate).
fn load_imm(dst: u8, value: u32, out: &mut Vec<Instruction>) {
    let lo = value & 0xFFFF;
    let mut hi = value >> 16;
    if lo >= 0x8000 {
        hi = (hi + 1) & 0xFFFF;
    }
    out.push(Instruction::rri(Opcode::Lui, dst, 0, hi as i32));
    out.push(Instruction::rri(Opcode::Addi, dst, dst, lo as i32));
}

/// Materializes `snap` (captured from a run of `case`) as a new
/// self-contained case entering at the restore prologue. Returns `None`
/// when the snapshot cannot be expressed safely: the run stored into its
/// own text, the resume PC falls outside the text segment, the memory
/// delta exceeds [`MAX_DELTA_WORDS`], or the combined case would exceed
/// the mutation engine's [`MAX_TEXT`].
pub fn materialize(case: &FuzzCase, snap: &SimSnapshot) -> Option<FuzzCase> {
    if snap.touches_text {
        return None;
    }
    let off = snap.pc.checked_sub(TEXT_BASE)?;
    if off % 4 != 0 || off / 4 >= case.text.len() as u64 {
        return None;
    }
    let resume_index = (off / 4) as u32;

    let mut pro = Vec::new();
    // 1. FCC first, while every FP register is still zero.
    if snap.regs[64] != 0 {
        pro.push(Instruction { op: Opcode::CEqS, rs: 0, rt: 0, rd: 0, shamt: 0, imm: 0 });
    }
    // 2. Memory delta, minus words that match the fresh image anyway.
    let image = Memory::with_program(&case.program());
    let dirty: Vec<(u64, u32)> =
        snap.mem_delta.iter().copied().filter(|&(a, w)| image.read_u32(a) != w).collect();
    if dirty.len() > MAX_DELTA_WORDS {
        return None;
    }
    for (addr, word) in dirty {
        let addr = u32::try_from(addr).ok()?;
        load_imm(SCRATCH_ADDR, addr, &mut pro);
        load_imm(SCRATCH_VAL, word, &mut pro);
        pro.push(Instruction::mem(Opcode::Sw, SCRATCH_VAL, SCRATCH_ADDR, 0));
    }
    // 3. FP registers (raw bits through mtc1; `mtc1 rt, fs` carries the
    //    integer source in `rt` and the FP destination in `rs`).
    for n in 0..32u8 {
        let bits = snap.regs[32 + n as usize];
        if bits != 0 {
            load_imm(SCRATCH_VAL, bits, &mut pro);
            pro.push(Instruction {
                op: Opcode::Mtc1,
                rs: n,
                rt: SCRATCH_VAL,
                rd: 0,
                shamt: 0,
                imm: 0,
            });
        }
    }
    // 4. Integer registers, ascending; r29 unconditionally (the
    //    simulators preset it to STACK_TOP, so even zero must be
    //    restored explicitly).
    for n in 1..32u8 {
        let v = snap.regs[n as usize];
        if v != 0 || n == 29 {
            load_imm(n, v, &mut pro);
        }
    }
    // 5. Jump into the original text at the resume point.
    pro.push(Instruction::jump(Opcode::J, ((TEXT_BASE >> 2) as u32) + resume_index));

    let entry = case.text.len() as u32;
    if case.text.len() + pro.len() > MAX_TEXT {
        return None;
    }
    let mut text = case.text.clone();
    text.append(&mut pro);
    let draft = FuzzCase { text, data: case.data.clone(), entry };
    // Normalize through the word codec so instruction fields are in
    // decode-canonical form (sign-extended immediates) — the form every
    // other case in the corpus uses, keeping equality and JSON
    // round-trips exact.
    FuzzCase::from_words(&draft.words(), &draft.data, entry).ok()
}

/// Captures up to `max_snaps` snapshots of `case` at evenly spaced
/// trace-formation points and materializes each. Short or snapshot-
/// hostile runs yield an empty vector. Fully deterministic: no RNG, and
/// capture points derive only from the case's own trace count.
pub fn snapshot_cases(case: &FuzzCase, max_instrs: u64, max_snaps: usize) -> Vec<FuzzCase> {
    if max_snaps == 0 || case.text.is_empty() {
        return Vec::new();
    }
    let program = case.program();
    let total = count_traces(&program, max_instrs, MAX_TRACE_LEN);
    if total < 4 {
        return Vec::new();
    }
    let mut ordinals: Vec<u64> = (1..=max_snaps as u64)
        .map(|k| k * total / (max_snaps as u64 + 1))
        .filter(|&o| o >= 1 && o < total)
        .collect();
    ordinals.dedup();
    capture_at_traces(&program, max_instrs, MAX_TRACE_LEN, &ordinals)
        .iter()
        .filter_map(|s| materialize(case, s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::oracle::{self, OracleConfig};
    use itr_sim::FuncSim;
    use itr_stats::SplitMix64;

    /// A deterministic case with a real loop, FP state, stores and a
    /// halt — rich enough that snapshots carry every state class.
    fn loopy_case() -> FuzzCase {
        let src = r#"
            .data
            acc: .word 0
            .text
            main:
                li r8, 20
                la r9, acc
                li r29, 4096
            top:
                lw r10, 0(r9)
                add r10, r10, r8
                sw r10, 0(r9)
                andi r11, r8, 7
                mtc1 r11, f3
                cvt.s.w f3, f3
                c.lt.s f0, f3
                addi r8, r8, -1
                bgtz r8, top
                lw r4, 0(r9)
                trap 1
                halt
        "#;
        let p = itr_isa::asm::assemble(src).expect("assembles");
        FuzzCase::from_program(&p).expect("converts")
    }

    #[test]
    fn materialized_case_replays_the_suffix_exactly() {
        let case = loopy_case();
        let program = case.program();
        let total = count_traces(&program, 100_000, MAX_TRACE_LEN);
        assert!(total > 6);
        let snap = &capture_at_traces(&program, 100_000, MAX_TRACE_LEN, &[total / 2])[0];
        let mat = materialize(&case, snap).expect("materializes");
        assert_eq!(mat.entry as usize, case.text.len());

        // Golden suffix: the original run's commits after the capture.
        let mut golden = FuncSim::new(&program);
        let (all, _) = golden.run_collect(100_000);
        let suffix = &all[snap.instrs as usize..];

        // The materialized run: prologue commits, then the suffix.
        let mut sim = FuncSim::new(&mat.program());
        let (records, stop) = sim.run_collect(100_000);
        let prologue_len = mat.text.len() - case.text.len();
        assert_eq!(&records[prologue_len..], suffix, "suffix must replay exactly");
        assert_eq!(stop, itr_sim::StopReason::Halted);
    }

    #[test]
    fn materialized_case_passes_every_oracle() {
        let case = loopy_case();
        let mats = snapshot_cases(&case, 100_000, 2);
        assert!(!mats.is_empty(), "loopy case must materialize");
        let cfg = OracleConfig::default();
        for m in &mats {
            let mut rng = SplitMix64::new(1);
            let eval = oracle::evaluate(m, &cfg, false, &mut rng);
            assert!(
                eval.findings.is_empty(),
                "materialized case must be oracle-clean: {:?}",
                eval.findings.iter().map(|f| &f.detail).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn materialization_is_deterministic_and_canonical() {
        let case = loopy_case();
        let a = snapshot_cases(&case, 100_000, 2);
        let b = snapshot_cases(&case, 100_000, 2);
        assert_eq!(a, b, "no RNG in the snapshot path");
        for m in &a {
            // Canonical form: the JSON round trip is exact.
            let v = m.to_value();
            let back = FuzzCase::from_value(&v).expect("parses");
            assert_eq!(&back, m);
        }
    }

    #[test]
    fn generated_cases_materialize_or_decline_gracefully() {
        let mut rng = SplitMix64::new(9);
        let mut materialized = 0;
        for _ in 0..12 {
            let case = gen::generate(&mut rng, 48);
            materialized += snapshot_cases(&case, 50_000, 1).len();
        }
        // Most generated cases contain counted loops; at least some must
        // materialize (the rest may be too short or trace-poor).
        assert!(materialized > 0, "no generated case materialized");
    }

    #[test]
    fn hostile_snapshots_are_rejected() {
        let case = loopy_case();
        let program = case.program();
        let snap = &capture_at_traces(&program, 100_000, MAX_TRACE_LEN, &[2])[0];
        // Text-dirty.
        let mut dirty = snap.clone();
        dirty.touches_text = true;
        assert!(materialize(&case, &dirty).is_none());
        // Resume PC outside text.
        let mut wild = snap.clone();
        wild.pc = TEXT_BASE + case.text.len() as u64 * 4 + 64;
        assert!(materialize(&case, &wild).is_none());
        // Oversized delta.
        let mut fat = snap.clone();
        fat.mem_delta = (0..MAX_DELTA_WORDS as u64 + 1)
            .map(|i| (itr_isa::DATA_BASE + 4096 + i * 4, 0xDEAD_0000 + i as u32))
            .collect();
        assert!(materialize(&case, &fat).is_none());
    }
}
