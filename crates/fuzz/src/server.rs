//! `itr-fuzz serve`: a long-running fuzzing campaign behind a tiny
//! std-only HTTP status endpoint.
//!
//! The server interleaves fuzzing batches with a non-blocking accept
//! loop on a local `TcpListener` — no threads, no async runtime, no
//! dependencies. Between batches it answers:
//!
//! * `GET /stats` — a live `itr-fuzz-serve/v1` JSON document
//!   (executions per second, coverage, corpus digest, findings count, …),
//! * `GET /findings` — the shrunken findings as `itr-fuzz-finding/v1`
//!   documents,
//! * `GET /corpus` — the full retained corpus as an `itr-fuzz-sync/v1`
//!   JSONL export (the same format `--sync-dir` files use),
//! * `POST /shutdown` — stop the campaign; the corpus and the final
//!   (deterministic) statistics are persisted before the process exits.
//!
//! With `--sync-dir`, the worker periodically writes its full retained
//! corpus as an `itr-fuzz-sync/v1` export and imports every peer
//! export it finds — the same merge the harness's generation barriers
//! run, so shards converge to a shared frontier regardless of timing.
//!
//! A new worker can *warm-start* from a running peer: with
//! `corpus_url` set, the worker fetches the peer's `GET /corpus`
//! export once before its first batch and imports it through the
//! normal fingerprint-dedup path — so late joiners begin at the
//! fleet's coverage frontier instead of rediscovering it.
//!
//! Wall-clock only influences the *live* `/stats` answer (its
//! `execs_per_sec` field) and when sync rounds happen; everything
//! persisted at shutdown — corpus and final stats — is a pure function
//! of the seed and the work performed.

use crate::engine::{FuzzConfig, FuzzOutcome, Fuzzer};
use crate::sync;
use itr_stats::json::Value;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Schema tag of the live `/stats` document.
pub const SERVE_SCHEMA: &str = "itr-fuzz-serve/v1";

/// Service parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Engine parameters (`fuzz.iters` is ignored; see `max_iters`).
    pub fuzz: FuzzConfig,
    /// TCP port to listen on (0 picks an ephemeral port; the bound port
    /// is reported through the `ready` callback).
    pub port: u16,
    /// Stop after this many mutation iterations (0 = run until
    /// `POST /shutdown`).
    pub max_iters: u64,
    /// Iterations fuzzed between accept polls — the answer-latency
    /// ceiling, in units of one oracle evaluation.
    pub batch: u64,
    /// Shared directory for cross-shard corpus sync.
    pub sync_dir: Option<PathBuf>,
    /// This worker's shard index inside `sync_dir`.
    pub worker: u32,
    /// Batches between sync rounds (0 = never).
    pub sync_every: u64,
    /// Where to persist `corpus.jsonl` and `serve_stats.json` at
    /// shutdown.
    pub out_dir: Option<PathBuf>,
    /// Peer to warm-start from: a `host:port` (optionally prefixed with
    /// `http://`, optionally with an explicit path, default `/corpus`)
    /// whose corpus export is fetched and imported before the first
    /// batch.
    pub corpus_url: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            fuzz: FuzzConfig::default(),
            port: 0,
            max_iters: 0,
            batch: 16,
            sync_dir: None,
            worker: 0,
            sync_every: 4,
            out_dir: None,
            corpus_url: None,
        }
    }
}

/// What one handled request asked the campaign to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Handled {
    Continue,
    Shutdown,
}

/// Runs the campaign. `ready` is called once with the bound port before
/// the first batch (how callers on ephemeral ports learn the address).
///
/// # Errors
///
/// Propagates socket-setup and persistence I/O errors; per-connection
/// errors are swallowed (a sloppy client must not kill the campaign).
pub fn serve(cfg: &ServeConfig, ready: &mut dyn FnMut(u16)) -> io::Result<FuzzOutcome> {
    let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
    listener.set_nonblocking(true)?;
    ready(listener.local_addr()?.port());

    let mut fuzzer = Fuzzer::new(cfg.fuzz.clone());
    fuzzer.seed(&|| false);
    if let Some(url) = &cfg.corpus_url {
        let peers = fetch_corpus(url)?;
        fuzzer.import(&peers);
    }
    let started = Instant::now();
    let mut batches = 0u64;
    let mut shutdown = false;

    while !shutdown {
        let left = if cfg.max_iters == 0 {
            cfg.batch
        } else {
            cfg.max_iters.saturating_sub(fuzzer.iterations()).min(cfg.batch)
        };
        fuzzer.run_iters(left, &|| false);
        batches += 1;

        if cfg.sync_every > 0 && batches.is_multiple_of(cfg.sync_every) {
            if let Some(dir) = &cfg.sync_dir {
                sync::write_export(dir, cfg.worker, &fuzzer.export_corpus())?;
                let peers = sync::read_peers(dir, cfg.worker)?;
                fuzzer.import(&peers);
            }
        }

        // Drain every connection waiting right now, then fuzz on.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if handle(stream, &fuzzer, started).unwrap_or(Handled::Continue)
                        == Handled::Shutdown
                    {
                        shutdown = true;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => return Err(e),
            }
        }

        if cfg.max_iters > 0 && fuzzer.iterations() >= cfg.max_iters {
            shutdown = true;
        }
    }

    if let Some(dir) = &cfg.sync_dir {
        sync::write_export(dir, cfg.worker, &fuzzer.export_corpus())?;
    }
    let out = fuzzer.finish();
    if let Some(dir) = &cfg.out_dir {
        persist(dir, &cfg.fuzz, &out)?;
    }
    Ok(out)
}

/// The live statistics document (the only place wall-clock appears).
fn live_stats(fuzzer: &Fuzzer, started: Instant) -> Value {
    let elapsed = started.elapsed().as_secs_f64().max(1e-6);
    let out = fuzzer.outcome();
    let execs_per_sec = (out.stats.execs as f64 / elapsed) as u64;
    Value::Object(vec![
        ("schema".to_string(), Value::Str(SERVE_SCHEMA.to_string())),
        ("seed".to_string(), Value::UInt(fuzzer.config().seed)),
        ("schedule".to_string(), Value::Str(fuzzer.config().schedule.label().to_string())),
        ("iterations".to_string(), Value::UInt(out.stats.iterations)),
        ("execs".to_string(), Value::UInt(out.stats.execs)),
        ("execs_per_sec".to_string(), Value::UInt(execs_per_sec)),
        ("coverage".to_string(), Value::UInt(out.stats.coverage as u64)),
        ("corpus_len".to_string(), Value::UInt(out.stats.corpus_len as u64)),
        ("corpus_digest".to_string(), Value::Str(format!("{:#018x}", out.stats.corpus_digest))),
        ("snapshot_cases".to_string(), Value::UInt(out.stats.snapshot_cases)),
        ("imported".to_string(), Value::UInt(out.stats.imported)),
        ("findings".to_string(), Value::UInt(out.stats.findings())),
    ])
}

/// Answers one connection. Request bodies are ignored; only the method
/// and path of the request line matter.
fn handle(mut stream: TcpStream, fuzzer: &Fuzzer, started: Instant) -> io::Result<Handled> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    let mut buf = [0u8; 1024];
    let n = stream.read(&mut buf)?;
    let head = String::from_utf8_lossy(&buf[..n]);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));

    let json = "application/json";
    let (status, ctype, body, handled) = match (method, path) {
        ("GET", "/stats") => {
            ("200 OK", json, live_stats(fuzzer, started).to_json(), Handled::Continue)
        }
        ("GET", "/findings") => {
            let docs: Vec<Value> = fuzzer.findings().iter().map(|f| f.to_value()).collect();
            let body = Value::Object(vec![
                ("schema".to_string(), Value::Str(SERVE_SCHEMA.to_string())),
                ("findings".to_string(), Value::Array(docs)),
            ])
            .to_json();
            ("200 OK", json, body, Handled::Continue)
        }
        ("GET", "/corpus") => {
            let body = sync::render(&fuzzer.export_corpus());
            ("200 OK", "application/jsonl", body, Handled::Continue)
        }
        ("POST", "/shutdown") => ("200 OK", json, "{\"ok\":true}".to_string(), Handled::Shutdown),
        _ => (
            "404 Not Found",
            json,
            "{\"error\":\"unknown endpoint\"}".to_string(),
            Handled::Continue,
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    Ok(handled)
}

/// Fetches a peer's `GET /corpus` export over plain HTTP/1.1 on a
/// blocking `TcpStream` (std-only, like the server itself). Accepts
/// `host:port`, `http://host:port` and either form with an explicit
/// path; the path defaults to `/corpus`.
///
/// # Errors
///
/// Propagates connection and read errors; an unparseable export (wrong
/// schema, tampered fingerprints) maps to [`io::ErrorKind::InvalidData`]
/// — a warm-start pointed at the wrong service should fail loudly, not
/// silently start cold.
fn fetch_corpus(url: &str) -> io::Result<Vec<sync::SyncRecord>> {
    let rest = url.strip_prefix("http://").unwrap_or(url);
    let (addr, path) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, "/corpus"),
    };
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut text = String::new();
    stream.read_to_string(&mut text)?;
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
    sync::parse(body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Persists the shutdown artifacts: the retained corpus as sync records
/// sorted by fingerprint (byte-identical for identical campaigns) and
/// the deterministic final statistics document.
fn persist(dir: &PathBuf, cfg: &FuzzConfig, out: &FuzzOutcome) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut records = out.corpus_records.clone();
    records.sort_by_key(|r| r.case.fingerprint());
    std::fs::write(dir.join("corpus.jsonl"), sync::render(&records))?;
    let mut stats = out.stats_value(cfg).to_json();
    stats.push('\n');
    std::fs::write(dir.join("serve_stats.json"), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::thread;

    fn http_get(port: u16, method: &str, path: &str) -> String {
        let mut s = TcpStream::connect(("127.0.0.1", port)).expect("connect");
        s.write_all(format!("{method} {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .expect("write");
        let mut body = String::new();
        s.read_to_string(&mut body).expect("read");
        body.split("\r\n\r\n").nth(1).expect("has body").to_string()
    }

    #[test]
    fn serve_answers_stats_findings_and_shutdown() {
        let dir = std::env::temp_dir().join(format!("itr-fuzz-serve-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ServeConfig {
            fuzz: FuzzConfig { skip_seeding: true, ..FuzzConfig::quick(1, 0) },
            batch: 4,
            sync_every: 0,
            out_dir: Some(dir.clone()),
            ..ServeConfig::default()
        };
        let (tx, rx) = mpsc::channel();
        let worker = thread::spawn(move || serve(&cfg, &mut |port| tx.send(port).expect("send")));
        let port = rx.recv().expect("port");

        let stats = Value::parse(&http_get(port, "GET", "/stats")).expect("stats parse");
        assert_eq!(stats.get("schema").and_then(Value::as_str), Some(SERVE_SCHEMA));
        assert!(stats.get("execs_per_sec").and_then(Value::as_u64).is_some());
        assert!(stats.get("coverage").and_then(Value::as_u64).is_some());
        assert!(stats.get("corpus_digest").and_then(Value::as_str).is_some());

        let findings = Value::parse(&http_get(port, "GET", "/findings")).expect("findings parse");
        assert!(matches!(findings.get("findings"), Some(Value::Array(_))));

        assert!(http_get(port, "GET", "/nonsense").contains("error"));

        let bye = http_get(port, "POST", "/shutdown");
        assert!(bye.contains("true"));
        let out = worker.join().expect("join").expect("serve ok");
        assert!(out.stats.execs > 0, "campaign fuzzed while serving");

        // Shutdown persisted the corpus and the final stats.
        let corpus = std::fs::read_to_string(dir.join("corpus.jsonl")).expect("corpus file");
        assert_eq!(sync::parse(&corpus).expect("corpus parses").len(), out.stats.corpus_len);
        let stats_doc = std::fs::read_to_string(dir.join("serve_stats.json")).expect("stats file");
        let v = Value::parse(stats_doc.trim()).expect("stats json");
        assert_eq!(v.get("schema").and_then(Value::as_str), Some(crate::engine::STATS_SCHEMA));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn max_iters_bounds_the_campaign_without_a_client() {
        let cfg = ServeConfig {
            fuzz: FuzzConfig { skip_seeding: true, ..FuzzConfig::quick(2, 0) },
            max_iters: 12,
            batch: 5,
            sync_every: 0,
            ..ServeConfig::default()
        };
        let out = serve(&cfg, &mut |_| {}).expect("serve ok");
        assert_eq!(out.stats.iterations, 12, "batch clamp must not overshoot");
    }

    #[test]
    fn warm_start_fetches_a_peer_corpus_over_http() {
        // Worker A: seeded, serves until told to shut down.
        let cfg_a = ServeConfig {
            fuzz: FuzzConfig::quick(5, 0),
            batch: 4,
            sync_every: 0,
            ..ServeConfig::default()
        };
        let (tx, rx) = mpsc::channel();
        let a = thread::spawn(move || serve(&cfg_a, &mut |port| tx.send(port).expect("send")));
        let port = rx.recv().expect("port");

        // The corpus endpoint serves a parseable, non-empty sync export.
        let corpus = http_get(port, "GET", "/corpus");
        let records = sync::parse(&corpus).expect("corpus export parses");
        assert!(!records.is_empty(), "seeded worker must export its corpus");

        // Worker B warm-starts from A and begins at A's frontier.
        let cfg_b = ServeConfig {
            fuzz: FuzzConfig { skip_seeding: true, ..FuzzConfig::quick(6, 0) },
            max_iters: 8,
            batch: 4,
            sync_every: 0,
            corpus_url: Some(format!("127.0.0.1:{port}")),
            ..ServeConfig::default()
        };
        let b = serve(&cfg_b, &mut |_| {}).expect("worker B");
        assert!(b.stats.imported > 0, "warm start must import the peer corpus");
        assert!(b.stats.corpus_len > 0);

        // A bad warm-start address fails loudly instead of starting cold.
        let cfg_bad =
            ServeConfig { corpus_url: Some("127.0.0.1:1".to_string()), ..ServeConfig::default() };
        assert!(serve(&cfg_bad, &mut |_| {}).is_err());

        http_get(port, "POST", "/shutdown");
        a.join().expect("join").expect("worker A");
    }

    #[test]
    fn shards_converge_through_the_sync_dir() {
        let dir = std::env::temp_dir().join(format!("itr-fuzz-shard-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mk = |seed, worker| ServeConfig {
            fuzz: FuzzConfig { skip_seeding: true, corpus_cap: 512, ..FuzzConfig::quick(seed, 0) },
            max_iters: 10,
            batch: 5,
            sync_dir: Some(dir.clone()),
            worker,
            sync_every: 1,
            ..ServeConfig::default()
        };
        // Worker 0 runs first and leaves its export; worker 1 imports it.
        let a = serve(&mk(3, 0), &mut |_| {}).expect("worker 0");
        let b = serve(&mk(4, 1), &mut |_| {}).expect("worker 1");
        assert!(b.stats.imported > 0, "worker 1 must import worker 0's novelty");
        assert!(b.stats.corpus_len >= a.stats.corpus_len.min(10));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
