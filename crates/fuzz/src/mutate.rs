//! Structure-aware mutation engine.
//!
//! Mutations act on decoded [`Instruction`]s, never on raw words, so
//! every mutant re-encodes to a valid program and the fuzzing budget is
//! spent on *behavioural* diversity: different opcode mixes, operand
//! aliasing, control-flow shapes, and loop trip structures — the axes the
//! ITR trace builder and cache actually discriminate on. The classic
//! mutators are all here: opcode substitution (within a syntax class),
//! operand perturbation, branch retargeting, block splice (within a case
//! or across two corpus entries), and loop fold/unroll.
//!
//! Mutants may stop terminating (a retargeted branch can loop); the
//! engine bounds every run by an instruction budget, so non-terminating
//! mutants cost time but never wedge the fuzzer. What mutants can *not*
//! do is overwrite their own text — [`sanitize`] re-establishes the
//! store-safety invariant after every mutation.

use crate::case::FuzzCase;
use crate::gen::{self, sanitize, DATA_PTR, INT_POOL};
use itr_isa::{Instruction, Opcode, Syntax};
use itr_stats::SplitMix64;

/// Hard cap on mutant text size: splice and unroll stop growing a case
/// past this.
pub const MAX_TEXT: usize = 512;

/// Opcodes sharing a syntax class — the substitution pool.
fn same_class(s: Syntax) -> Vec<Opcode> {
    Opcode::ALL.iter().copied().filter(|op| op.props().syntax == s).collect()
}

fn pick_index(rng: &mut SplitMix64, len: usize) -> usize {
    rng.gen_range(0..len.max(1))
}

/// Substitutes the opcode of one instruction with another of the same
/// syntax class, keeping every operand field.
fn substitute_opcode(rng: &mut SplitMix64, text: &mut [Instruction]) {
    let i = pick_index(rng, text.len());
    let class = same_class(text[i].op.props().syntax);
    text[i].op = class[rng.gen_range(0..class.len())];
}

/// Perturbs one operand field of one instruction.
fn perturb_operand(rng: &mut SplitMix64, text: &mut [Instruction]) {
    let i = pick_index(rng, text.len());
    let inst = &mut text[i];
    let is_branchy = inst.op.ends_trace();
    match rng.gen_range(0u32..5) {
        0 => inst.rs = rng.gen_range(0u8..32),
        1 => inst.rt = rng.gen_range(0u8..32),
        2 => inst.rd = rng.gen_range(0u8..32),
        3 => inst.shamt = rng.gen_range(0u8..32),
        // Branch and jump immediates belong to `retarget_branch`; for
        // everything else flip between a small delta and a fresh value.
        _ if !is_branchy => {
            inst.imm = if rng.gen_bool(0.5) {
                inst.imm.wrapping_add(rng.gen_range(-8i32..9))
            } else {
                rng.gen_range(-0x8000i32..0x8000)
            };
        }
        _ => inst.rs = rng.gen_range(0u8..32),
    }
}

/// Retargets one branch or jump to a random instruction in the text.
fn retarget_branch(rng: &mut SplitMix64, text: &mut [Instruction]) {
    let branches: Vec<usize> = text
        .iter()
        .enumerate()
        .filter(|(_, inst)| {
            matches!(
                inst.op.props().syntax,
                Syntax::Branch2 | Syntax::Branch1 | Syntax::FpBranch | Syntax::Jump
            )
        })
        .map(|(i, _)| i)
        .collect();
    if branches.is_empty() {
        return;
    }
    let b = branches[rng.gen_range(0..branches.len())];
    let target = rng.gen_range(0..text.len()) as i64;
    if text[b].op.props().syntax == Syntax::Jump {
        text[b].imm = ((itr_isa::TEXT_BASE >> 2) as i64 + target) as i32 & 0x03FF_FFFF;
    } else {
        let offset = target - (b as i64 + 1);
        text[b].imm = offset.clamp(-0x8000, 0x7FFF) as i32;
    }
}

/// Splices a short block from `donor` (another corpus entry, or the case
/// itself) into a random position.
fn splice_block(rng: &mut SplitMix64, text: &mut Vec<Instruction>, donor: &[Instruction]) {
    if donor.is_empty() || text.len() >= MAX_TEXT {
        return;
    }
    let len = rng.gen_range(1usize..9).min(donor.len()).min(MAX_TEXT - text.len());
    let from = rng.gen_range(0..donor.len() - len + 1);
    let at = rng.gen_range(0..text.len() + 1);
    let block: Vec<Instruction> = donor[from..from + len].to_vec();
    text.splice(at..at, block);
}

/// Finds the backward branches (loop latches) in the text.
fn latches(text: &[Instruction]) -> Vec<usize> {
    text.iter()
        .enumerate()
        .filter(|(i, inst)| {
            matches!(inst.op.props().syntax, Syntax::Branch2 | Syntax::Branch1 | Syntax::FpBranch)
                && inst.imm < 0
                && (*i as i64 + 1 + i64::from(inst.imm)) >= 0
        })
        .map(|(i, _)| i)
        .collect()
}

/// Unrolls one loop once: duplicates the body before the latch and
/// re-aims the latch at the original loop top.
fn unroll_loop(rng: &mut SplitMix64, text: &mut Vec<Instruction>) {
    let latches = latches(text);
    if latches.is_empty() {
        return;
    }
    let b = latches[rng.gen_range(0..latches.len())];
    let top = (b as i64 + 1 + i64::from(text[b].imm)) as usize;
    let body: Vec<Instruction> = text[top..b].to_vec();
    if body.is_empty() || text.len() + body.len() > MAX_TEXT {
        return;
    }
    text.splice(b..b, body.clone());
    let new_b = b + body.len();
    text[new_b].imm = (top as i64 - (new_b as i64 + 1)).clamp(-0x8000, 0) as i32;
}

/// Folds one loop: deletes one body instruction and tightens the latch.
fn fold_loop(rng: &mut SplitMix64, text: &mut Vec<Instruction>) {
    let latches = latches(text);
    if latches.is_empty() {
        return;
    }
    let b = latches[rng.gen_range(0..latches.len())];
    let top = (b as i64 + 1 + i64::from(text[b].imm)) as usize;
    if b - top < 2 {
        return;
    }
    let victim = top + rng.gen_range(0..b - top - 1);
    text.remove(victim);
    text[b - 1].imm += 1;
}

/// Inserts one fresh body instruction, or deletes one (keeping at least
/// three instructions so the case stays runnable).
fn insert_or_delete(rng: &mut SplitMix64, text: &mut Vec<Instruction>) {
    if rng.gen_bool(0.5) && text.len() < MAX_TEXT {
        let at = rng.gen_range(0..text.len() + 1);
        let inst = Instruction::rri(
            Opcode::Addi,
            INT_POOL[rng.gen_range(0..INT_POOL.len())],
            DATA_PTR - 1,
            rng.gen_range(-64i32..64),
        );
        text.insert(at, inst);
    } else if text.len() > 3 {
        let at = rng.gen_range(0..text.len());
        text.remove(at);
    }
}

/// Produces one mutant: 1–3 stacked mutations over `base`, spliced
/// against `donor` when the corpus offers one, then re-sanitized.
pub fn mutate(rng: &mut SplitMix64, base: &FuzzCase, donor: Option<&FuzzCase>) -> FuzzCase {
    let mut case = base.clone();
    let rounds = rng.gen_range(1u32..4);
    for _ in 0..rounds {
        match rng.gen_range(0u32..12) {
            0..=2 => substitute_opcode(rng, &mut case.text),
            3..=5 => perturb_operand(rng, &mut case.text),
            6..=7 => retarget_branch(rng, &mut case.text),
            8 => {
                let donor_text = donor.map(|d| d.text.clone()).unwrap_or_else(|| case.text.clone());
                splice_block(rng, &mut case.text, &donor_text);
            }
            9 => unroll_loop(rng, &mut case.text),
            10 => fold_loop(rng, &mut case.text),
            _ => insert_or_delete(rng, &mut case.text),
        }
    }
    if case.text.is_empty() || !case.text.iter().any(|i| i.op == Opcode::Trap) {
        // Keep a halt reachable at the end — mutants may still never get
        // there, but the common path stays terminating.
        case.text.push(Instruction::trap(itr_isa::trap::HALT));
    }
    sanitize(&mut case);
    case
}

/// Generates a fresh structured case (the engine's non-mutation path).
pub fn fresh(rng: &mut SplitMix64, target_len: usize) -> FuzzCase {
    gen::generate(rng, target_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use itr_isa::encode;

    fn base(seed: u64) -> FuzzCase {
        gen::generate(&mut SplitMix64::new(seed), 40)
    }

    #[test]
    fn mutants_always_reencode_to_valid_words() {
        let mut rng = SplitMix64::new(5);
        let b = base(1);
        for _ in 0..200 {
            let m = mutate(&mut rng, &b, None);
            for inst in &m.text {
                let w = encode(inst);
                itr_isa::decode(w).expect("mutant word decodes");
            }
            // And the program still assembles into an image.
            let p = m.program();
            assert!(!p.text().is_empty());
        }
    }

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let b = base(2);
        let d = base(3);
        let a1 = mutate(&mut SplitMix64::new(9), &b, Some(&d));
        let a2 = mutate(&mut SplitMix64::new(9), &b, Some(&d));
        assert_eq!(a1, a2);
    }

    #[test]
    fn mutants_respect_the_store_safety_invariant() {
        let mut rng = SplitMix64::new(13);
        let b = base(4);
        for _ in 0..200 {
            let m = mutate(&mut rng, &b, Some(&b));
            for inst in &m.text {
                if inst.op.is_store() {
                    assert_eq!(inst.rs, DATA_PTR);
                    assert!(inst.imm >= 0);
                }
            }
            assert!(m.text.len() <= MAX_TEXT + 8, "unbounded growth");
        }
    }

    #[test]
    fn unroll_preserves_the_loop_top() {
        // li r20,2; top: add; addi r20,-1; bne r20,r0,top  (offset -3)
        let mut text = vec![
            Instruction::rri(Opcode::Addi, 20, 0, 2),
            Instruction::rrr(Opcode::Add, 8, 8, 9),
            Instruction::rri(Opcode::Addi, 20, 20, -1),
            Instruction::branch(Opcode::Bne, 20, 0, -3),
        ];
        let mut rng = SplitMix64::new(1);
        unroll_loop(&mut rng, &mut text);
        assert_eq!(text.len(), 6, "body duplicated once");
        let b = 5;
        assert_eq!(text[b].op, Opcode::Bne);
        assert_eq!(b as i64 + 1 + i64::from(text[b].imm), 1, "latch still aims at top");
    }
}
