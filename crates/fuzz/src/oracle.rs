//! The four differential oracles run on every fuzz input.
//!
//! 1. **Commit-stream equivalence** — the functional reference and the
//!    cycle-level pipeline (plain and ITR-protected) must commit the
//!    same architectural stream. Divergences are rendered through
//!    [`crate::diag::first_divergence`].
//! 2. **Signature determinism** — within one trace-length configuration,
//!    every dynamic trace starting at a given PC has statically
//!    determined content, so its `(signature, len)` must be identical
//!    across occurrences and across runs; across configurations, equal
//!    start and equal length imply equal signature.
//! 3. **Fault consistency** — injecting a decode-signal fault through
//!    `itr-faults` and classifying it in passive mode must agree with
//!    architectural ground truth: a mask verdict cannot coexist with an
//!    observed SDC or deadlock, and active-mode recovery must uphold
//!    the verdict's recovery claim.
//! 4. **Static subset** — every dynamically formed trace must belong to
//!    the static trace universe `itr-analyze` enumerates, with a
//!    matching signature and length. A violation means either the
//!    static enumerator or the decode-time trace formation is wrong.
//! 5. **Recovery ground truth** — the passive classification's
//!    active-mode prediction versus what the `itr-recover` engine
//!    actually did: the sound invariant subset
//!    ([`itr_recover::sound_violation`]) must hold for every injected
//!    transient fault. This re-widens the cross-mode checks oracle 3
//!    had to narrow — instead of *predicting* recovery from passive
//!    bits, the engine rolls back and re-executes, so
//!    predicted-vs-actual is checkable without heuristics.
//!
//! Alongside verdicts the oracles emit the coverage features the engine
//! feeds its novelty map.

use crate::case::FuzzCase;
use crate::coverage;
use crate::diag;
use itr_core::{ItrConfig, ItrMode};
use itr_faults::{
    classify, observe_fault, observe_model, validate_active_recovery, validate_model_recovery,
    FaultModel, FaultRecord, ModelKind, Outcome,
};
use itr_isa::{DecodeSignals, Program, SignalFlags};
use itr_recover::{run_recovery, sound_violation, GoldenRun, RecoverConfig};
use itr_sim::{
    CommitRecord, DecodeFault, FuncSim, Pipeline, PipelineConfig, RunExit, StopReason, TraceStream,
};
use itr_stats::{Report, SplitMix64};
use std::collections::{BTreeMap, HashMap};

/// Budgets and knobs of one oracle evaluation.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Committed-instruction budget of the golden reference run.
    pub max_instrs: u64,
    /// Faults injected per fault-consistency evaluation.
    pub fault_count: u32,
    /// Observation window of each injected fault, in cycles.
    pub window_cycles: u64,
}

impl Default for OracleConfig {
    fn default() -> OracleConfig {
        OracleConfig { max_instrs: 1500, fault_count: 2, window_cycles: 4000 }
    }
}

impl OracleConfig {
    /// Cycle budget of the pipeline runs: generous CPI headroom over the
    /// instruction budget plus slack for the 10k-cycle deadlock
    /// watchdog, so only wedged or non-terminating programs hit the
    /// limit (and those fall back to prefix comparison, not a finding).
    pub fn max_cycles(&self) -> u64 {
        self.max_instrs * 12 + 12_000
    }
}

/// Which oracle flagged a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleKind {
    /// FuncSim-vs-pipeline commit-stream divergence.
    CommitEquivalence,
    /// Trace signatures not a function of (start PC, length).
    SignatureDeterminism,
    /// Fault classifier verdict contradicts architectural ground truth.
    FaultConsistency,
    /// A dynamic trace is not a member of the static trace universe.
    StaticSubset,
    /// The recovery engine's actual outcome violates a sound invariant
    /// of the passive classification's active-mode prediction.
    RecoveryGroundTruth,
}

impl OracleKind {
    /// Stable label used in persisted regression cases.
    pub fn label(self) -> &'static str {
        match self {
            OracleKind::CommitEquivalence => "commit_equivalence",
            OracleKind::SignatureDeterminism => "signature_determinism",
            OracleKind::FaultConsistency => "fault_consistency",
            OracleKind::StaticSubset => "static_subset",
            OracleKind::RecoveryGroundTruth => "recovery_ground_truth",
        }
    }

    /// Inverse of [`OracleKind::label`].
    pub fn from_label(s: &str) -> Option<OracleKind> {
        match s {
            "commit_equivalence" => Some(OracleKind::CommitEquivalence),
            "signature_determinism" => Some(OracleKind::SignatureDeterminism),
            "fault_consistency" => Some(OracleKind::FaultConsistency),
            "static_subset" => Some(OracleKind::StaticSubset),
            "recovery_ground_truth" => Some(OracleKind::RecoveryGroundTruth),
            _ => None,
        }
    }
}

/// One oracle violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The oracle that fired.
    pub kind: OracleKind,
    /// Human-readable account of the violation.
    pub detail: String,
    /// The injected fault, for fault-consistency findings.
    pub fault: Option<DecodeFault>,
}

/// Everything one evaluation produced: verdicts plus coverage features.
#[derive(Debug, Clone, Default)]
pub struct Evaluation {
    /// Oracle violations (empty = the case passed).
    pub findings: Vec<Finding>,
    /// Coverage features for the novelty map.
    pub features: Vec<u32>,
    /// Instructions the golden reference committed.
    pub golden_len: usize,
    /// Observed control-flow edges `(branch_pc, destination_pc)` — one
    /// entry per executed trace-ending instruction outcome, sorted and
    /// deduplicated. This is the compact export the gap engine
    /// (`itr_analyze::gap`) diffs against the static CFG, so gap
    /// analysis never re-derives edges from replays.
    pub edges: Vec<(u64, u64)>,
}

/// Runs the golden functional reference, collecting the committed
/// stream, its control-flow coverage features and the observed CFG edge
/// set.
fn golden_run(
    program: &Program,
    cfg: &OracleConfig,
    out: &mut Evaluation,
) -> (Vec<CommitRecord>, StopReason) {
    let mut sim = FuncSim::new(program);
    let mut records = Vec::new();
    let mut prev_op: Option<u8> = None;
    while (records.len() as u64) < cfg.max_instrs {
        let Some(step) = sim.step() else { break };
        let op = step.signals.opcode;
        if let Some(p) = prev_op {
            out.features.push(coverage::pair_feature(p, op));
        }
        if step.signals.flags.contains(SignalFlags::IS_BRANCH) {
            let taken = step.record.next_pc != step.record.pc + 4;
            out.features.push(coverage::branch_feature(op, taken));
            out.edges.push((step.record.pc, step.record.next_pc));
        }
        prev_op = Some(op);
        records.push(step.record);
    }
    let stop = sim.stopped().unwrap_or(StopReason::InstrLimit);
    out.features.push(coverage::stop_feature(stop));
    out.edges.sort_unstable();
    out.edges.dedup();
    (records, stop)
}

/// Collects a pipeline run's commit stream, capped a little past the
/// golden length so runaway runs cannot flood memory.
fn pipeline_run(
    program: &Program,
    pipe_cfg: PipelineConfig,
    max_cycles: u64,
    cap: usize,
) -> (Vec<CommitRecord>, RunExit, Vec<(u64, itr_core::ItrEvent)>, String) {
    let mut pipe = Pipeline::new(program, pipe_cfg);
    let mut records = Vec::with_capacity(cap.min(4096));
    let exit = pipe.run_with(max_cycles, |r| {
        records.push(*r);
        records.len() < cap
    });
    let events = pipe.itr_events().to_vec();
    let stats = pipe.stats_json();
    (records, exit, events, stats)
}

/// True when `exit` is the pipeline analogue of `stop`, for complete
/// golden runs.
fn exits_match(stop: StopReason, exit: RunExit) -> bool {
    matches!(
        (stop, exit),
        (StopReason::Halted, RunExit::Halted) | (StopReason::Aborted(_), RunExit::Aborted(_))
    )
}

/// Oracle 1 against one pipeline configuration.
#[allow(clippy::too_many_arguments)]
fn check_equivalence(
    program: &Program,
    label: &str,
    pipe_cfg: PipelineConfig,
    golden: &[CommitRecord],
    stop: StopReason,
    cfg: &OracleConfig,
    out: &mut Evaluation,
) {
    let is_itr = pipe_cfg.itr.is_some();
    let cap = golden.len() + 8;
    let (records, exit, events, stats) = pipeline_run(program, pipe_cfg, cfg.max_cycles(), cap);
    out.features.push(coverage::exit_feature(exit));
    if is_itr {
        let mut counts: BTreeMap<u32, (itr_core::ItrEvent, u64)> = BTreeMap::new();
        for (_, ev) in &events {
            let k = coverage::event_feature(ev, 1);
            let e = counts.entry(k).or_insert((*ev, 0));
            e.1 += 1;
        }
        for (ev, n) in counts.values() {
            out.features.push(coverage::event_feature(ev, *n));
        }
        if let Ok(report) = Report::from_json(&stats) {
            coverage::counter_features(&report, &mut out.features);
        }
    }
    let complete = matches!(stop, StopReason::Halted | StopReason::Aborted(_));
    if matches!(stop, StopReason::DecodeError(_)) {
        return;
    }
    // A truncated golden run compared against a cycle- or caller-limited
    // pipeline run can only be prefix-checked; every *conclusive* pipeline
    // exit (halt, abort, deadlock, machine check) is fully comparable.
    let conclusive = matches!(
        exit,
        RunExit::Halted | RunExit::Aborted(_) | RunExit::Deadlock | RunExit::MachineCheck { .. }
    );
    if matches!(exit, RunExit::Deadlock | RunExit::MachineCheck { .. }) {
        out.findings.push(Finding {
            kind: OracleKind::CommitEquivalence,
            detail: format!(
                "{label}: fault-free pipeline exited with {exit:?} after {} commits",
                records.len()
            ),
            fault: None,
        });
        return;
    }
    let divergence = if complete || (conclusive && records.len() < golden.len()) {
        // Both runs ran to completion, or the pipeline concluded before
        // the truncated golden stream ran out — either way the streams
        // are comparable in full and any difference is a divergence.
        diag::first_divergence(program, golden, &records)
    } else {
        // The golden run was truncated at the instruction budget; the
        // pipeline (bounded by cycles and a slightly larger commit cap)
        // may legitimately conclude a few commits past it. Only the
        // common prefix is comparable.
        let n = golden.len().min(records.len());
        diag::first_divergence(program, &golden[..n], &records[..n])
    };
    if let Some(d) = divergence {
        out.findings.push(Finding {
            kind: OracleKind::CommitEquivalence,
            detail: format!("{label}: golden stop {stop:?}, pipeline exit {exit:?}\n{d}"),
            fault: None,
        });
    } else if complete && !exits_match(stop, exit) && conclusive {
        out.findings.push(Finding {
            kind: OracleKind::CommitEquivalence,
            detail: format!("{label}: streams match but exits differ: {stop:?} vs {exit:?}"),
            fault: None,
        });
    }
}

/// Oracle 2: signature determinism within and across trace-length
/// configurations.
fn check_signatures(program: &Program, cfg: &OracleConfig, out: &mut Evaluation) {
    let budget = cfg.max_instrs.min(1200);
    // (trace_len_config, start_pc) -> (signature, dynamic trace length)
    let mut by_config: BTreeMap<u32, BTreeMap<u64, (u64, u32)>> = BTreeMap::new();
    for max_len in [4u32, 8, 16] {
        let map = by_config.entry(max_len).or_default();
        for t in TraceStream::with_trace_len(program, budget, max_len) {
            out.features.push(coverage::trace_len_feature(t.len));
            match map.get(&t.start_pc) {
                None => {
                    map.insert(t.start_pc, (t.signature, t.len));
                }
                Some(&(sig, len)) if sig != t.signature || len != t.len => {
                    out.findings.push(Finding {
                        kind: OracleKind::SignatureDeterminism,
                        detail: format!(
                            "trace_len={max_len}: start_pc {:#010x} produced \
                             (sig {sig:#018x}, len {len}) then (sig {:#018x}, len {})",
                            t.start_pc, t.signature, t.len
                        ),
                        fault: None,
                    });
                    return;
                }
                Some(_) => {}
            }
        }
        // Re-run the identical stream: fold must be a pure function of
        // the trace content.
        let mut second: BTreeMap<u64, (u64, u32)> = BTreeMap::new();
        for t in TraceStream::with_trace_len(program, budget, max_len) {
            second.entry(t.start_pc).or_insert((t.signature, t.len));
        }
        if second != *map {
            out.findings.push(Finding {
                kind: OracleKind::SignatureDeterminism,
                detail: format!("trace_len={max_len}: signature map differs between two runs"),
                fault: None,
            });
            return;
        }
    }
    // Across configurations, equal (start_pc, len) must mean equal
    // signature — the fold sees the same instructions.
    let mut canonical: HashMap<(u64, u32), (u64, u32)> = HashMap::new();
    for (max_len, map) in &by_config {
        for (&start_pc, &(sig, len)) in map {
            match canonical.get(&(start_pc, len)) {
                None => {
                    canonical.insert((start_pc, len), (sig, *max_len));
                }
                Some(&(other_sig, other_cfg)) if other_sig != sig => {
                    out.findings.push(Finding {
                        kind: OracleKind::SignatureDeterminism,
                        detail: format!(
                            "start_pc {start_pc:#010x} len {len}: sig {other_sig:#018x} under \
                             trace_len={other_cfg} but {sig:#018x} under trace_len={max_len}"
                        ),
                        fault: None,
                    });
                    return;
                }
                Some(_) => {}
            }
        }
    }
}

/// Oracle 4: every dynamic trace must be a member of the static trace
/// universe, with matching signature and length, for every trace-length
/// configuration.
///
/// The two tolerated escape classes mirror `itr-analyze`'s
/// cross-validation semantics: starts outside the bounded analysis
/// region (runaway control flow deep into nop-space) and closure misses
/// in programs with register-indirect jumps (mutation can synthesize
/// `jr`/`jalr` with arbitrary register targets the conservative target
/// set cannot predict). Content mismatches are never excused — the
/// fuzz generator pins stores away from the text region, so the static
/// image is exactly what fetch sees.
fn check_static_subset(program: &Program, cfg: &OracleConfig, out: &mut Evaluation) {
    let budget = cfg.max_instrs.min(1200);
    let image = itr_analyze::ProgramImage::new(program);
    for max_len in [4u32, 8, 16] {
        let universe =
            itr_analyze::enumerate(&image, max_len, &itr_analyze::EnumOptions::default());
        let dynamic: Vec<_> = TraceStream::with_trace_len(program, budget, max_len).collect();
        let cv = itr_analyze::cross_validate(&image, &universe, &dynamic);
        if let Some(v) = cv.violations.first() {
            out.findings.push(Finding {
                kind: OracleKind::StaticSubset,
                detail: format!(
                    "trace_len={max_len}: dynamic trace start {:#010x} (sig {:#018x}, len {}) \
                     vs static {} — {:?} check failed ({} static traces, {} region escapes, \
                     {} indirect escapes)",
                    v.dynamic.start_pc,
                    v.dynamic.signature,
                    v.dynamic.len,
                    v.static_record.map_or("<incomplete walk>".to_string(), |s| format!(
                        "(sig {:#018x}, len {})",
                        s.signature, s.len
                    )),
                    v.kind,
                    universe.traces.len(),
                    cv.region_escapes,
                    cv.indirect_escapes,
                ),
                fault: None,
            });
            return;
        }
    }
}

/// The per-trace clean-signature map used as classifier ground truth.
fn clean_signatures(program: &Program, max_instrs: u64) -> HashMap<u64, u64> {
    let mut sigs = HashMap::new();
    for t in TraceStream::new(program, max_instrs) {
        sigs.entry(t.start_pc).or_insert(t.signature);
    }
    sigs
}

/// Checks one specific fault against the consistency oracle, returning
/// the classified outcome and a finding when the verdict contradicts
/// the architectural ground truth.
///
/// Two sound checks only (early fuzzing surfaced that the broader
/// cross-mode predictions are heuristic, not invariant):
///
/// * a mask-claiming verdict (`*Mask`) must not coexist with an
///   observed SDC or deadlock — the classifier derives the verdict from
///   exactly these observation bits, so a contradiction means the
///   taxonomy itself is broken;
/// * an [`Outcome::ItrSdcR`] verdict (faulty *accessor*, clean cached
///   signature) must actually recover in active mode: the retry
///   re-decodes cleanly and re-checks against the clean cached line, so
///   divergence or a machine check is a real bug.
///
/// The remaining detected outcomes have no sound active-mode
/// prediction. `ItrMask` cannot see which side of the mismatch was
/// faulty: a masked fault whose faulty instance *recorded* the
/// signature machine-checks in active mode (a spurious DUE inherent to
/// the scheme, not a bug). `ItrSdcD`'s machine-check prediction can be
/// rescued by an eviction between the retry flush and the refetch
/// (miss → clean re-record → clean finish). `ItrWdogR` inherits both
/// ambiguities.
fn check_one_fault(
    program: &Program,
    golden: &[CommitRecord],
    clean_sigs: &HashMap<u64, u64>,
    fault: DecodeFault,
    cfg: &OracleConfig,
) -> (Outcome, Option<Finding>) {
    let passive = ItrConfig { mode: ItrMode::Passive, ..ItrConfig::paper_default() };
    let (obs, _report) = observe_fault(program, fault, golden, passive, cfg.window_cycles);
    let outcome = classify(&obs, clean_sigs);
    let claims_mask =
        matches!(outcome, Outcome::ItrMask | Outcome::MayItrMask | Outcome::UndetMask);
    if claims_mask && (obs.sdc || obs.deadlock) {
        let finding = Finding {
            kind: OracleKind::FaultConsistency,
            detail: format!(
                "fault {fault:?}: classified {outcome:?} but observation shows sdc={} deadlock={}",
                obs.sdc, obs.deadlock
            ),
            fault: Some(fault),
        };
        return (outcome, Some(finding));
    }
    if outcome == Outcome::ItrSdcR {
        let record = FaultRecord { fault, field: DecodeSignals::field_of_bit(fault.bit), outcome };
        if let Err(e) = validate_active_recovery(
            program,
            &record,
            golden,
            ItrConfig::paper_default(),
            cfg.window_cycles,
        ) {
            let finding = Finding {
                kind: OracleKind::FaultConsistency,
                detail: format!("fault {fault:?} classified {outcome:?}: {e}"),
                fault: Some(fault),
            };
            return (outcome, Some(finding));
        }
    }
    (outcome, None)
}

/// Checks one extended fault model against the consistency oracle.
///
/// The soundness split mirrors [`check_one_fault`], adjusted for
/// persistence:
///
/// * the mask-contradiction check is sound for **every** model — the
///   verdict is derived from exactly the observation bits it is checked
///   against, regardless of how many times the model struck;
/// * the [`Outcome::ItrSdcR`] active-recovery check is applied only
///   when [`FaultModel::active_recovery_sound`] holds (transient
///   models). Persistent and intermittent models re-strike during the
///   retry window, so active-mode recovery is not predicted by the
///   passive verdict and checking it would manufacture false findings.
///
/// Model findings carry `fault: None`: the persisted-regression replay
/// path covers single-SEU faults only, and the model itself is quoted
/// in the detail string.
fn check_one_model(
    program: &Program,
    golden: &[CommitRecord],
    clean_sigs: &HashMap<u64, u64>,
    model: &FaultModel,
    cfg: &OracleConfig,
) -> (Outcome, Option<Finding>) {
    let passive = ItrConfig { mode: ItrMode::Passive, ..ItrConfig::paper_default() };
    let (obs, _report) = observe_model(program, model, golden, passive, cfg.window_cycles);
    let outcome = classify(&obs, clean_sigs);
    let claims_mask =
        matches!(outcome, Outcome::ItrMask | Outcome::MayItrMask | Outcome::UndetMask);
    if claims_mask && (obs.sdc || obs.deadlock) {
        let finding = Finding {
            kind: OracleKind::FaultConsistency,
            detail: format!(
                "model {model:?}: classified {outcome:?} but observation shows sdc={} deadlock={}",
                obs.sdc, obs.deadlock
            ),
            fault: None,
        };
        return (outcome, Some(finding));
    }
    if outcome == Outcome::ItrSdcR && model.active_recovery_sound() {
        if let Err(e) = validate_model_recovery(
            program,
            model,
            golden,
            ItrConfig::paper_default(),
            cfg.window_cycles,
        ) {
            let finding = Finding {
                kind: OracleKind::FaultConsistency,
                detail: format!("model {model:?} classified {outcome:?}: {e}"),
                fault: None,
            };
            return (outcome, Some(finding));
        }
    }
    (outcome, None)
}

/// Oracle 5: the checkpoint/rollback engine's *actual* outcome versus
/// the sound invariant subset of the passive verdict's active-mode
/// prediction ([`itr_recover::sound_violation`]).
///
/// This is the re-widened form of the cross-mode checks oracle 3 had to
/// narrow: instead of predicting what active mode *would* do from
/// passive observation bits, the recovery engine runs active mode, rolls
/// back on detection and classifies against the architectural golden
/// run — so predicted-vs-actual becomes checkable without heuristics.
/// Soundness preconditions (transient model, complete golden run, no
/// context switches) are the caller's responsibility: `check_faults`
/// only runs on halting cases and gates models on
/// [`FaultModel::active_recovery_sound`].
fn check_recovery(
    program: &Program,
    passive: Outcome,
    model: &FaultModel,
    fault: Option<DecodeFault>,
    grun: &GoldenRun,
    rcfg: &RecoverConfig,
    out: &mut Evaluation,
) {
    let run = run_recovery(program, model, grun, rcfg);
    out.features.push(coverage::recovery_feature(run.actual));
    if let Some(v) = sound_violation(passive, &run) {
        out.findings.push(Finding {
            kind: OracleKind::RecoveryGroundTruth,
            detail: format!("model {model:?}: {v}"),
            fault,
        });
    }
}

/// Oracles 3 and 5: classifier verdicts versus architectural ground
/// truth, for `cfg.fault_count` randomly placed decode faults plus one
/// sampled extended fault model per evaluation (the kind rotates with
/// the RNG, so a long campaign exercises all seven). Each transient
/// fault additionally takes the full trip through the recovery engine.
fn check_faults(
    program: &Program,
    golden: &[CommitRecord],
    cfg: &OracleConfig,
    rng: &mut SplitMix64,
    out: &mut Evaluation,
) {
    let clean_sigs = clean_signatures(program, cfg.max_instrs);
    let grun = GoldenRun::capture(program, cfg.max_instrs);
    let rcfg = RecoverConfig {
        checkpoint_min_gap: 0,
        max_cycles: cfg.max_cycles(),
        ..RecoverConfig::default()
    };
    for _ in 0..cfg.fault_count {
        let fault = DecodeFault {
            nth_decode: rng.gen_range(2..golden.len() as u64),
            bit: rng.gen_range(0u32..64),
        };
        let (outcome, finding) = check_one_fault(program, golden, &clean_sigs, fault, cfg);
        out.features.push(coverage::outcome_feature(outcome));
        out.findings.extend(finding);
        check_recovery(program, outcome, &FaultModel::Seu(fault), Some(fault), &grun, &rcfg, out);
    }
    let kind = ModelKind::ALL[rng.gen_range(0..ModelKind::ALL.len())];
    let model = FaultModel::sample(kind, rng, 2, golden.len() as u64);
    let (outcome, finding) = check_one_model(program, golden, &clean_sigs, &model, cfg);
    out.features.push(coverage::outcome_feature(outcome).wrapping_add(kind as u32 + 1));
    out.findings.extend(finding);
    if model.active_recovery_sound() {
        check_recovery(program, outcome, &model, None, &grun, &rcfg, out);
    }
}

/// Replays exactly one fault against the consistency oracle — the
/// regression-replay path for persisted fault-consistency findings.
/// Returns the finding when it still reproduces.
///
/// Sound only when the fault-free program halts within budget: a
/// complete golden stream is the architectural ground truth (commits
/// past its end count as SDC) and its trace stream enumerates every
/// clean-path signature. Non-halting cases return `None`, which also
/// keeps the shrinker from minimizing a finding out of the sound
/// regime.
pub fn replay_fault(case: &FuzzCase, fault: DecodeFault, cfg: &OracleConfig) -> Option<Finding> {
    let program = case.program();
    let mut sim = FuncSim::new(&program);
    let (golden, stop) = sim.run_collect(cfg.max_instrs);
    if stop != StopReason::Halted || golden.len() < 3 {
        return None;
    }
    let clean_sigs = clean_signatures(&program, cfg.max_instrs);
    check_one_fault(&program, &golden, &clean_sigs, fault, cfg).1
}

/// Evaluates one case against the oracles.
///
/// `with_faults` gates the (expensive) fault-consistency oracle; the
/// engine schedules it on a deterministic cadence. `rng` drives fault
/// placement only, so oracle verdicts for a fixed case and fixed RNG
/// state are deterministic.
pub fn evaluate(
    case: &FuzzCase,
    cfg: &OracleConfig,
    with_faults: bool,
    rng: &mut SplitMix64,
) -> Evaluation {
    let program = case.program();
    let mut out = Evaluation::default();
    let (golden, stop) = golden_run(&program, cfg, &mut out);
    out.golden_len = golden.len();
    check_equivalence(&program, "plain", PipelineConfig::default(), &golden, stop, cfg, &mut out);
    check_equivalence(&program, "itr", PipelineConfig::with_itr(), &golden, stop, cfg, &mut out);
    check_signatures(&program, cfg, &mut out);
    check_static_subset(&program, cfg, &mut out);
    if with_faults && stop == StopReason::Halted && golden.len() >= 20 {
        check_faults(&program, &golden, cfg, rng, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn eval_seed(seed: u64, with_faults: bool) -> Evaluation {
        let case = gen::generate(&mut SplitMix64::new(seed), 48);
        let mut rng = SplitMix64::new(seed ^ 0x9E37_79B9);
        evaluate(&case, &OracleConfig::default(), with_faults, &mut rng)
    }

    #[test]
    fn generated_cases_pass_all_oracles() {
        for seed in 0..6u64 {
            let e = eval_seed(seed, seed % 2 == 0);
            assert!(
                e.findings.is_empty(),
                "seed {seed} produced findings: {:?}",
                e.findings.iter().map(|f| &f.detail).collect::<Vec<_>>()
            );
            assert!(!e.features.is_empty());
            assert!(e.golden_len > 0);
        }
    }

    #[test]
    fn evaluation_is_deterministic() {
        let a = eval_seed(3, true);
        let b = eval_seed(3, true);
        assert_eq!(a.features, b.features);
        assert_eq!(a.golden_len, b.golden_len);
        assert_eq!(a.findings.len(), b.findings.len());
    }

    #[test]
    fn a_halt_just_past_the_instruction_budget_is_not_a_divergence() {
        // The golden run truncates at `max_instrs`; the pipeline, bounded
        // by cycles and a slightly larger commit cap, legitimately
        // commits the halt sitting one instruction past the budget. Only
        // the common prefix is comparable — this must not be a finding.
        let n = 40usize;
        let body: String = (0..n).map(|i| format!("    addi r8, r8, {}\n", i % 7)).collect();
        let src = format!(".text\nmain:\n{body}    halt\n");
        let program = itr_isa::asm::assemble(&src).expect("assembles");
        let case = FuzzCase::from_program(&program).expect("converts");
        let cfg = OracleConfig { max_instrs: n as u64, ..OracleConfig::default() };
        let mut rng = SplitMix64::new(0);
        let e = evaluate(&case, &cfg, false, &mut rng);
        assert_eq!(e.golden_len as u64, cfg.max_instrs, "golden truncated at the budget");
        assert!(
            e.findings.is_empty(),
            "budget-boundary halt flagged: {:?}",
            e.findings.iter().map(|f| &f.detail).collect::<Vec<_>>()
        );
    }

    #[test]
    fn a_divergent_stream_is_reported_with_diagnostics() {
        // Simulate a pipeline bug by comparing golden against a tampered
        // copy through the same diagnostic path the oracle uses.
        let case = gen::generate(&mut SplitMix64::new(7), 32);
        let program = case.program();
        let mut sim = FuncSim::new(&program);
        let (golden, _) = sim.run_collect(2000);
        let mut actual = golden.clone();
        if let Some((_, v)) = &mut actual[golden.len() / 2].dst {
            *v ^= 1;
        } else {
            actual.truncate(golden.len() / 2);
        }
        let d = diag::first_divergence(&program, &golden, &actual).expect("tampered");
        assert!(d.to_string().contains("first divergent commit"));
    }

    #[test]
    fn every_fault_model_kind_is_oracle_sound() {
        // Each extended model kind, sampled over a halting generated
        // program, must classify without contradicting the architectural
        // observation — the always-sound half of the consistency oracle,
        // plus the active-recovery half where the model is transient.
        let cfg = OracleConfig::default();
        let mut gen_rng = SplitMix64::new(11);
        let (case, golden) = loop {
            let case = gen::generate(&mut gen_rng, 48);
            let program = case.program();
            let mut sim = FuncSim::new(&program);
            let (golden, stop) = sim.run_collect(cfg.max_instrs);
            if stop == StopReason::Halted && golden.len() >= 20 {
                break (case, golden);
            }
        };
        let program = case.program();
        let clean_sigs = clean_signatures(&program, cfg.max_instrs);
        let mut rng = SplitMix64::new(0xE21);
        for kind in ModelKind::ALL {
            for _ in 0..3 {
                let model = FaultModel::sample(kind, &mut rng, 2, golden.len() as u64);
                let (outcome, finding) =
                    check_one_model(&program, &golden, &clean_sigs, &model, &cfg);
                assert!(
                    finding.is_none(),
                    "{}: {model:?} -> {outcome:?}: {:?}",
                    kind.label(),
                    finding.map(|f| f.detail)
                );
            }
        }
    }

    #[test]
    fn model_checks_are_deterministic() {
        let a = eval_seed(4, true);
        let b = eval_seed(4, true);
        assert_eq!(a.features, b.features);
        assert_eq!(a.findings.len(), b.findings.len());
    }

    #[test]
    fn oracle_kind_labels_round_trip() {
        for k in [
            OracleKind::CommitEquivalence,
            OracleKind::SignatureDeterminism,
            OracleKind::FaultConsistency,
            OracleKind::StaticSubset,
            OracleKind::RecoveryGroundTruth,
        ] {
            assert_eq!(OracleKind::from_label(k.label()), Some(k));
        }
        assert_eq!(OracleKind::from_label("nope"), None);
    }
}
