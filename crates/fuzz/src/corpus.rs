//! Corpus management: workload seeding, retention, and the persisted
//! regression-case format.
//!
//! The corpus starts from the `itr-workloads` suite — every hand-written
//! kernel plus a small mimic per SPEC2K profile — so the first mutants
//! already exercise realistic control flow, then grows by novelty (the
//! engine adds any case that lights a new coverage feature).
//!
//! Findings are persisted as `itr-fuzz-finding/v1` JSON documents:
//! the shrunken case, the oracle that fired, the budgets it ran under,
//! and (for fault-consistency findings) the exact injected fault.
//! Documents checked into `tests/fuzz_regressions/` are replayed by the
//! `fuzz_replay` integration test and by `itr-fuzz replay` in CI.

use crate::case::FuzzCase;
use crate::oracle::{self, Finding, OracleConfig, OracleKind};
use itr_sim::DecodeFault;
use itr_stats::json::Value;
use itr_stats::SplitMix64;
use std::collections::{BTreeMap, HashSet};

/// Schema tag of the persisted finding format.
pub const FINDING_SCHEMA: &str = "itr-fuzz-finding/v1";

/// Builds the seed corpus from the workload suite: every kernel, plus
/// one small mimic per SPEC2K profile (sized so a seed evaluation stays
/// within the oracle's instruction budget).
pub fn seed_corpus(seed: u64, mimic_instrs: u64) -> Vec<FuzzCase> {
    let mut seeds = Vec::new();
    for w in itr_workloads::suite::everything(seed, mimic_instrs) {
        if let Ok(case) = FuzzCase::from_program(&w.program) {
            seeds.push(case);
        }
    }
    seeds
}

/// One retained case together with the scheduling metadata the power
/// scheduler and the eviction policy consume.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// The case itself.
    pub case: FuzzCase,
    /// `case.fingerprint()`, computed once at insertion —
    /// [`FuzzCase::fingerprint`] re-encodes the whole text and hashes
    /// the data image, far too expensive for the per-pick probing the
    /// power scheduler does.
    pub fingerprint: u64,
    /// Every coverage feature the case's evaluation lit (sorted,
    /// deduplicated) — the eviction policy's cover sets.
    pub features: Vec<u32>,
    /// The subset of `features` this entry was the *first* to light —
    /// its novelty claim, which the power scheduler weighs by rarity.
    pub novel: Vec<u32>,
    /// Mutation-chain depth: workload seeds and fresh cases are 0, a
    /// mutant is its parent's depth + 1.
    pub depth: u32,
    /// Insertion ordinal (for age accounting).
    pub inserted_at: u64,
}

/// Growth/retention accounting, exported with the run statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CorpusStats {
    /// Cases currently retained.
    pub len: usize,
    /// Total successful inserts (including later-evicted cases).
    pub inserts: u64,
    /// Entries displaced by the ring-replacement policy.
    pub evictions: u64,
    /// Evictions where every candidate was the sole cover of some
    /// feature, so protection had to be overridden.
    pub forced_evictions: u64,
    /// Pushes rejected as fingerprint duplicates.
    pub duplicates: u64,
    /// Features currently covered by exactly one retained entry (the
    /// entries the eviction policy protects).
    pub sole_cover_features: usize,
    /// Mean age of retained entries, in inserts since insertion.
    pub mean_age: u64,
    /// Age of the oldest retained entry, in inserts since insertion.
    pub max_age: u64,
}

/// The retained corpus: deduplicated by fingerprint, bounded, replaced
/// ring-wise once full so late novelty still lands — except that an
/// entry which is the only retained cover of some coverage feature is
/// skipped over (evicting it would forget the only witness of that
/// behaviour; see [`CorpusStats::forced_evictions`] for the fallback).
#[derive(Debug, Clone)]
pub struct Corpus {
    entries: Vec<CorpusEntry>,
    seen: HashSet<u64>,
    /// feature → number of retained entries whose `features` contain it.
    cover: BTreeMap<u32, u32>,
    cap: usize,
    inserts: u64,
    evictions: u64,
    forced_evictions: u64,
    duplicates: u64,
}

impl Corpus {
    /// An empty corpus holding at most `cap` cases.
    pub fn new(cap: usize) -> Corpus {
        Corpus {
            entries: Vec::new(),
            seen: HashSet::new(),
            cover: BTreeMap::new(),
            cap: cap.max(1),
            inserts: 0,
            evictions: 0,
            forced_evictions: 0,
            duplicates: 0,
        }
    }

    /// Adds `case` with empty scheduling metadata (tests and legacy
    /// paths). Returns whether the corpus changed.
    pub fn push(&mut self, case: FuzzCase) -> bool {
        self.push_with(case, Vec::new(), Vec::new(), 0)
    }

    /// Adds `case` with its lit features, its first-lit (novel) features
    /// and its mutation depth, unless an identical case is already
    /// present. Returns whether the corpus changed.
    pub fn push_with(
        &mut self,
        case: FuzzCase,
        mut features: Vec<u32>,
        mut novel: Vec<u32>,
        depth: u32,
    ) -> bool {
        let fingerprint = case.fingerprint();
        if !self.seen.insert(fingerprint) {
            self.duplicates += 1;
            return false;
        }
        features.sort_unstable();
        features.dedup();
        novel.sort_unstable();
        novel.dedup();
        let entry =
            CorpusEntry { case, fingerprint, features, novel, depth, inserted_at: self.inserts };
        if self.entries.len() < self.cap {
            self.add_cover(&entry);
            self.entries.push(entry);
        } else {
            let victim = self.pick_victim();
            self.remove_cover(victim);
            self.seen.remove(&self.entries[victim].fingerprint);
            self.add_cover(&entry);
            self.entries[victim] = entry;
            self.evictions += 1;
        }
        self.inserts += 1;
        true
    }

    /// The ring slot to displace: the first candidate at or after the
    /// ring cursor that is not the sole cover of any feature. When every
    /// entry is protected, the cursor slot is sacrificed anyway (counted
    /// as a forced eviction) so the corpus keeps accepting novelty.
    fn pick_victim(&mut self) -> usize {
        let start = (self.inserts % self.cap as u64) as usize;
        for i in 0..self.entries.len() {
            let idx = (start + i) % self.entries.len();
            if !self.is_sole_cover(idx) {
                return idx;
            }
        }
        self.forced_evictions += 1;
        start
    }

    fn is_sole_cover(&self, idx: usize) -> bool {
        self.entries[idx].features.iter().any(|f| self.cover.get(f).copied().unwrap_or(0) == 1)
    }

    fn add_cover(&mut self, entry: &CorpusEntry) {
        for &f in &entry.features {
            *self.cover.entry(f).or_insert(0) += 1;
        }
    }

    fn remove_cover(&mut self, idx: usize) {
        for f in &self.entries[idx].features {
            if let Some(n) = self.cover.get_mut(f) {
                *n -= 1;
                if *n == 0 {
                    self.cover.remove(f);
                }
            }
        }
    }

    /// Number of retained cases.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when an identical case is already retained.
    pub fn contains(&self, fingerprint: u64) -> bool {
        self.seen.contains(&fingerprint)
    }

    /// The retained entries, in slot order.
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// A deterministic uniform random pick, or `None` when empty (the
    /// baseline the power scheduler is measured against).
    pub fn pick<'a>(&'a self, rng: &mut SplitMix64) -> Option<&'a FuzzCase> {
        if self.entries.is_empty() {
            None
        } else {
            Some(&self.entries[rng.gen_range(0..self.entries.len())].case)
        }
    }

    /// XOR-fold over the retained fingerprints — a cheap order-insensitive
    /// digest for the deterministic stats export.
    pub fn digest(&self) -> u64 {
        self.entries.iter().fold(0u64, |h, e| h ^ e.fingerprint)
    }

    /// Growth/retention accounting.
    pub fn stats(&self) -> CorpusStats {
        let ages: Vec<u64> = self.entries.iter().map(|e| self.inserts - e.inserted_at).collect();
        CorpusStats {
            len: self.entries.len(),
            inserts: self.inserts,
            evictions: self.evictions,
            forced_evictions: self.forced_evictions,
            duplicates: self.duplicates,
            sole_cover_features: self.cover.values().filter(|&&n| n == 1).count(),
            mean_age: if ages.is_empty() {
                0
            } else {
                ages.iter().sum::<u64>() / ages.len() as u64
            },
            max_age: ages.iter().copied().max().unwrap_or(0),
        }
    }
}

/// A persisted finding: the case, the oracle that fired, and enough
/// context to replay it byte-for-byte.
#[derive(Debug, Clone)]
pub struct RegressionCase {
    /// The (shrunken) reproducer.
    pub case: FuzzCase,
    /// The oracle that fired.
    pub kind: OracleKind,
    /// Human-readable account captured at discovery time.
    pub detail: String,
    /// The injected fault, for fault-consistency findings.
    pub fault: Option<DecodeFault>,
    /// Budgets the finding was observed under.
    pub config: OracleConfig,
}

impl RegressionCase {
    /// Packages a finding for persistence.
    pub fn new(case: FuzzCase, finding: &Finding, config: OracleConfig) -> RegressionCase {
        RegressionCase {
            case,
            kind: finding.kind,
            detail: finding.detail.clone(),
            fault: finding.fault,
            config,
        }
    }

    /// Serializes to the `itr-fuzz-finding/v1` JSON document.
    pub fn to_value(&self) -> Value {
        let mut fields = vec![
            ("schema".to_string(), Value::Str(FINDING_SCHEMA.to_string())),
            ("oracle".to_string(), Value::Str(self.kind.label().to_string())),
            ("detail".to_string(), Value::Str(self.detail.clone())),
            (
                "config".to_string(),
                Value::Object(vec![
                    ("max_instrs".to_string(), Value::UInt(self.config.max_instrs)),
                    ("fault_count".to_string(), Value::UInt(u64::from(self.config.fault_count))),
                    ("window_cycles".to_string(), Value::UInt(self.config.window_cycles)),
                ]),
            ),
        ];
        if let Some(f) = self.fault {
            fields.push((
                "fault".to_string(),
                Value::Object(vec![
                    ("nth_decode".to_string(), Value::UInt(f.nth_decode)),
                    ("bit".to_string(), Value::UInt(u64::from(f.bit))),
                ]),
            ));
        }
        fields.push(("case".to_string(), self.case.to_value()));
        Value::Object(fields)
    }

    /// Serialized document text.
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Parses a persisted document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(text: &str) -> Result<RegressionCase, String> {
        let v = Value::parse(text).map_err(|e| format!("malformed JSON: {e:?}"))?;
        match v.get("schema").and_then(Value::as_str) {
            Some(FINDING_SCHEMA) => {}
            other => return Err(format!("unsupported finding schema {other:?}")),
        }
        let kind = v
            .get("oracle")
            .and_then(Value::as_str)
            .and_then(OracleKind::from_label)
            .ok_or("missing or unknown oracle label")?;
        let detail = v.get("detail").and_then(Value::as_str).unwrap_or("").to_string();
        let cfg = v.get("config").ok_or("missing config")?;
        let config = OracleConfig {
            max_instrs: cfg
                .get("max_instrs")
                .and_then(Value::as_u64)
                .ok_or("missing max_instrs")?,
            fault_count: cfg
                .get("fault_count")
                .and_then(Value::as_u64)
                .ok_or("missing fault_count")? as u32,
            window_cycles: cfg
                .get("window_cycles")
                .and_then(Value::as_u64)
                .ok_or("missing window_cycles")?,
        };
        let fault = match v.get("fault") {
            None => None,
            Some(f) => Some(DecodeFault {
                nth_decode: f
                    .get("nth_decode")
                    .and_then(Value::as_u64)
                    .ok_or("missing nth_decode")?,
                bit: f.get("bit").and_then(Value::as_u64).ok_or("missing bit")? as u32,
            }),
        };
        let case = FuzzCase::from_value(v.get("case").ok_or("missing case")?)?;
        Ok(RegressionCase { case, kind, detail, fault, config })
    }

    /// Replays the case under its recorded budgets. Returns the finding
    /// when the failure still reproduces, `None` once fixed.
    pub fn reproduces(&self) -> Option<Finding> {
        match (self.kind, self.fault) {
            (OracleKind::FaultConsistency, Some(fault)) => {
                oracle::replay_fault(&self.case, fault, &self.config)
            }
            _ => {
                // Fault placement is irrelevant here; the RNG only
                // drives oracle 3, which is disabled for this replay.
                let mut rng = SplitMix64::new(0);
                oracle::evaluate(&self.case, &self.config, false, &mut rng)
                    .findings
                    .into_iter()
                    .find(|f| f.kind == self.kind)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn seeds_cover_kernels_and_mimics() {
        let seeds = seed_corpus(1, 1500);
        assert!(seeds.len() >= 8, "suite should yield a healthy seed set, got {}", seeds.len());
        for s in &seeds {
            assert!(!s.text.is_empty());
        }
    }

    #[test]
    fn corpus_dedups_and_bounds() {
        let mut c = Corpus::new(3);
        let a = gen::generate(&mut SplitMix64::new(1), 20);
        assert!(c.push(a.clone()));
        assert!(!c.push(a.clone()), "identical case rejected");
        for seed in 2..6u64 {
            c.push(gen::generate(&mut SplitMix64::new(seed), 20));
        }
        assert_eq!(c.len(), 3, "capped");
        let mut rng = SplitMix64::new(7);
        assert!(c.pick(&mut rng).is_some());
    }

    #[test]
    fn eviction_spares_sole_covers() {
        let mut c = Corpus::new(2);
        // Entry A is the only cover of feature 7; entry B covers only
        // common features.
        let a = gen::generate(&mut SplitMix64::new(1), 20);
        let b = gen::generate(&mut SplitMix64::new(2), 20);
        assert!(c.push_with(a.clone(), vec![7, 100], vec![7], 0));
        assert!(c.push_with(b, vec![100], vec![], 1));
        // Pushing two more cases forces two evictions; A must survive
        // both because nothing else covers feature 7.
        for seed in 3..5u64 {
            let n = gen::generate(&mut SplitMix64::new(seed), 20);
            assert!(c.push_with(n, vec![100], vec![], 1));
        }
        let kept: Vec<u64> = c.entries().iter().map(|e| e.case.fingerprint()).collect();
        assert!(kept.contains(&a.fingerprint()), "sole cover of feature 7 evicted");
        let stats = c.stats();
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.forced_evictions, 0);
        assert_eq!(stats.sole_cover_features, 1, "feature 7 is sole-covered");
    }

    #[test]
    fn forced_eviction_when_everything_is_protected() {
        let mut c = Corpus::new(2);
        // Every entry is the sole cover of its own private feature.
        for seed in 1..4u64 {
            let n = gen::generate(&mut SplitMix64::new(seed), 20);
            assert!(c.push_with(n, vec![seed as u32], vec![seed as u32], 0));
        }
        let stats = c.stats();
        assert_eq!(stats.len, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.forced_evictions, 1, "protection must yield, not wedge");
    }

    #[test]
    fn stats_track_growth_and_age() {
        let mut c = Corpus::new(8);
        let a = gen::generate(&mut SplitMix64::new(1), 20);
        c.push(a.clone());
        c.push(a); // duplicate
        c.push(gen::generate(&mut SplitMix64::new(2), 20));
        let stats = c.stats();
        assert_eq!(stats.inserts, 2);
        assert_eq!(stats.duplicates, 1);
        assert_eq!(stats.max_age, 2, "first entry is two inserts old");
        assert!(c.contains(c.entries()[0].case.fingerprint()));
    }

    #[test]
    fn regression_documents_round_trip() {
        let case = gen::generate(&mut SplitMix64::new(3), 24);
        let finding = Finding {
            kind: OracleKind::FaultConsistency,
            detail: "demo".to_string(),
            fault: Some(DecodeFault { nth_decode: 9, bit: 17 }),
        };
        let rc = RegressionCase::new(case, &finding, OracleConfig::default());
        let back = RegressionCase::from_json(&rc.to_json()).unwrap();
        assert_eq!(back.kind, OracleKind::FaultConsistency);
        assert_eq!(back.fault, Some(DecodeFault { nth_decode: 9, bit: 17 }));
        assert_eq!(back.case, rc.case);
        assert_eq!(back.config.max_instrs, rc.config.max_instrs);
    }

    #[test]
    fn healthy_cases_do_not_reproduce_any_finding() {
        let case = gen::generate(&mut SplitMix64::new(4), 24);
        let rc = RegressionCase {
            case,
            kind: OracleKind::CommitEquivalence,
            detail: String::new(),
            fault: None,
            config: OracleConfig { max_instrs: 600, ..OracleConfig::default() },
        };
        assert!(rc.reproduces().is_none());
    }
}
