//! Corpus management: workload seeding, retention, and the persisted
//! regression-case format.
//!
//! The corpus starts from the `itr-workloads` suite — every hand-written
//! kernel plus a small mimic per SPEC2K profile — so the first mutants
//! already exercise realistic control flow, then grows by novelty (the
//! engine adds any case that lights a new coverage feature).
//!
//! Findings are persisted as `itr-fuzz-finding/v1` JSON documents:
//! the shrunken case, the oracle that fired, the budgets it ran under,
//! and (for fault-consistency findings) the exact injected fault.
//! Documents checked into `tests/fuzz_regressions/` are replayed by the
//! `fuzz_replay` integration test and by `itr-fuzz replay` in CI.

use crate::case::FuzzCase;
use crate::oracle::{self, Finding, OracleConfig, OracleKind};
use itr_sim::DecodeFault;
use itr_stats::json::Value;
use itr_stats::SplitMix64;
use std::collections::HashSet;

/// Schema tag of the persisted finding format.
pub const FINDING_SCHEMA: &str = "itr-fuzz-finding/v1";

/// Builds the seed corpus from the workload suite: every kernel, plus
/// one small mimic per SPEC2K profile (sized so a seed evaluation stays
/// within the oracle's instruction budget).
pub fn seed_corpus(seed: u64, mimic_instrs: u64) -> Vec<FuzzCase> {
    let mut seeds = Vec::new();
    for w in itr_workloads::suite::everything(seed, mimic_instrs) {
        if let Ok(case) = FuzzCase::from_program(&w.program) {
            seeds.push(case);
        }
    }
    seeds
}

/// The retained corpus: deduplicated by fingerprint, bounded, replaced
/// ring-wise once full so late novelty still lands.
#[derive(Debug, Clone)]
pub struct Corpus {
    entries: Vec<FuzzCase>,
    seen: HashSet<u64>,
    cap: usize,
    inserts: usize,
}

impl Corpus {
    /// An empty corpus holding at most `cap` cases.
    pub fn new(cap: usize) -> Corpus {
        Corpus { entries: Vec::new(), seen: HashSet::new(), cap: cap.max(1), inserts: 0 }
    }

    /// Adds `case` unless an identical case is already present. Returns
    /// whether the corpus changed.
    pub fn push(&mut self, case: FuzzCase) -> bool {
        if !self.seen.insert(case.fingerprint()) {
            return false;
        }
        if self.entries.len() < self.cap {
            self.entries.push(case);
        } else {
            let victim = self.inserts % self.cap;
            self.seen.remove(&self.entries[victim].fingerprint());
            self.entries[victim] = case;
        }
        self.inserts += 1;
        true
    }

    /// Number of retained cases.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// A deterministic random pick, or `None` when empty.
    pub fn pick<'a>(&'a self, rng: &mut SplitMix64) -> Option<&'a FuzzCase> {
        if self.entries.is_empty() {
            None
        } else {
            Some(&self.entries[rng.gen_range(0..self.entries.len())])
        }
    }

    /// XOR-fold over the retained fingerprints — a cheap order-insensitive
    /// digest for the deterministic stats export.
    pub fn digest(&self) -> u64 {
        self.entries.iter().fold(0u64, |h, c| h ^ c.fingerprint())
    }
}

/// A persisted finding: the case, the oracle that fired, and enough
/// context to replay it byte-for-byte.
#[derive(Debug, Clone)]
pub struct RegressionCase {
    /// The (shrunken) reproducer.
    pub case: FuzzCase,
    /// The oracle that fired.
    pub kind: OracleKind,
    /// Human-readable account captured at discovery time.
    pub detail: String,
    /// The injected fault, for fault-consistency findings.
    pub fault: Option<DecodeFault>,
    /// Budgets the finding was observed under.
    pub config: OracleConfig,
}

impl RegressionCase {
    /// Packages a finding for persistence.
    pub fn new(case: FuzzCase, finding: &Finding, config: OracleConfig) -> RegressionCase {
        RegressionCase {
            case,
            kind: finding.kind,
            detail: finding.detail.clone(),
            fault: finding.fault,
            config,
        }
    }

    /// Serializes to the `itr-fuzz-finding/v1` JSON document.
    pub fn to_value(&self) -> Value {
        let mut fields = vec![
            ("schema".to_string(), Value::Str(FINDING_SCHEMA.to_string())),
            ("oracle".to_string(), Value::Str(self.kind.label().to_string())),
            ("detail".to_string(), Value::Str(self.detail.clone())),
            (
                "config".to_string(),
                Value::Object(vec![
                    ("max_instrs".to_string(), Value::UInt(self.config.max_instrs)),
                    ("fault_count".to_string(), Value::UInt(u64::from(self.config.fault_count))),
                    ("window_cycles".to_string(), Value::UInt(self.config.window_cycles)),
                ]),
            ),
        ];
        if let Some(f) = self.fault {
            fields.push((
                "fault".to_string(),
                Value::Object(vec![
                    ("nth_decode".to_string(), Value::UInt(f.nth_decode)),
                    ("bit".to_string(), Value::UInt(u64::from(f.bit))),
                ]),
            ));
        }
        fields.push(("case".to_string(), self.case.to_value()));
        Value::Object(fields)
    }

    /// Serialized document text.
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Parses a persisted document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(text: &str) -> Result<RegressionCase, String> {
        let v = Value::parse(text).map_err(|e| format!("malformed JSON: {e:?}"))?;
        match v.get("schema").and_then(Value::as_str) {
            Some(FINDING_SCHEMA) => {}
            other => return Err(format!("unsupported finding schema {other:?}")),
        }
        let kind = v
            .get("oracle")
            .and_then(Value::as_str)
            .and_then(OracleKind::from_label)
            .ok_or("missing or unknown oracle label")?;
        let detail = v.get("detail").and_then(Value::as_str).unwrap_or("").to_string();
        let cfg = v.get("config").ok_or("missing config")?;
        let config = OracleConfig {
            max_instrs: cfg
                .get("max_instrs")
                .and_then(Value::as_u64)
                .ok_or("missing max_instrs")?,
            fault_count: cfg
                .get("fault_count")
                .and_then(Value::as_u64)
                .ok_or("missing fault_count")? as u32,
            window_cycles: cfg
                .get("window_cycles")
                .and_then(Value::as_u64)
                .ok_or("missing window_cycles")?,
        };
        let fault = match v.get("fault") {
            None => None,
            Some(f) => Some(DecodeFault {
                nth_decode: f
                    .get("nth_decode")
                    .and_then(Value::as_u64)
                    .ok_or("missing nth_decode")?,
                bit: f.get("bit").and_then(Value::as_u64).ok_or("missing bit")? as u32,
            }),
        };
        let case = FuzzCase::from_value(v.get("case").ok_or("missing case")?)?;
        Ok(RegressionCase { case, kind, detail, fault, config })
    }

    /// Replays the case under its recorded budgets. Returns the finding
    /// when the failure still reproduces, `None` once fixed.
    pub fn reproduces(&self) -> Option<Finding> {
        match (self.kind, self.fault) {
            (OracleKind::FaultConsistency, Some(fault)) => {
                oracle::replay_fault(&self.case, fault, &self.config)
            }
            _ => {
                // Fault placement is irrelevant here; the RNG only
                // drives oracle 3, which is disabled for this replay.
                let mut rng = SplitMix64::new(0);
                oracle::evaluate(&self.case, &self.config, false, &mut rng)
                    .findings
                    .into_iter()
                    .find(|f| f.kind == self.kind)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn seeds_cover_kernels_and_mimics() {
        let seeds = seed_corpus(1, 1500);
        assert!(seeds.len() >= 8, "suite should yield a healthy seed set, got {}", seeds.len());
        for s in &seeds {
            assert!(!s.text.is_empty());
        }
    }

    #[test]
    fn corpus_dedups_and_bounds() {
        let mut c = Corpus::new(3);
        let a = gen::generate(&mut SplitMix64::new(1), 20);
        assert!(c.push(a.clone()));
        assert!(!c.push(a.clone()), "identical case rejected");
        for seed in 2..6u64 {
            c.push(gen::generate(&mut SplitMix64::new(seed), 20));
        }
        assert_eq!(c.len(), 3, "capped");
        let mut rng = SplitMix64::new(7);
        assert!(c.pick(&mut rng).is_some());
    }

    #[test]
    fn regression_documents_round_trip() {
        let case = gen::generate(&mut SplitMix64::new(3), 24);
        let finding = Finding {
            kind: OracleKind::FaultConsistency,
            detail: "demo".to_string(),
            fault: Some(DecodeFault { nth_decode: 9, bit: 17 }),
        };
        let rc = RegressionCase::new(case, &finding, OracleConfig::default());
        let back = RegressionCase::from_json(&rc.to_json()).unwrap();
        assert_eq!(back.kind, OracleKind::FaultConsistency);
        assert_eq!(back.fault, Some(DecodeFault { nth_decode: 9, bit: 17 }));
        assert_eq!(back.case, rc.case);
        assert_eq!(back.config.max_instrs, rc.config.max_instrs);
    }

    #[test]
    fn healthy_cases_do_not_reproduce_any_finding() {
        let case = gen::generate(&mut SplitMix64::new(4), 24);
        let rc = RegressionCase {
            case,
            kind: OracleKind::CommitEquivalence,
            detail: String::new(),
            fault: None,
            config: OracleConfig { max_instrs: 600, ..OracleConfig::default() },
        };
        assert!(rc.reproduces().is_none());
    }
}
