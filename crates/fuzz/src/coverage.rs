//! The novelty-feedback map that decides corpus retention.
//!
//! Every oracle run distills into a set of small integer *features* over
//! four axes:
//!
//! * **opcode pairs** — consecutive committed opcodes (the control-flow
//!   edges of the executed program),
//! * **branch outcomes** — (branch opcode, taken) pairs,
//! * **pipeline telemetry** — log₂ buckets over the `itr-stats` counters
//!   the cycle-level pipeline exports (mispredicts, retry flushes, cache
//!   misses, SPC violations, …),
//! * **ITR-unit states** — the [`itr_core::ItrEvent`] kinds a run drove
//!   the detection stack through (mismatch, retry, recovery, machine
//!   check, cache-fault repair, miss insertion, unreferenced eviction),
//!   plus cache hit/miss/eviction buckets and observed trace lengths.
//!
//! A case earns a corpus slot when it lights any feature no earlier case
//! lit — the classic coverage-guided retention rule, with the feature map
//! sized so the whole state space fits in a flat bitmap.

use itr_core::ItrEvent;
use itr_sim::{RunExit, StopReason};
use itr_stats::Report;

/// Number of opcodes in the `rISA` (the pair-feature stride).
const OPS: u32 = 66;

const PAIR_BASE: u32 = 0;
const PAIR_SIZE: u32 = OPS * OPS;
const BRANCH_BASE: u32 = PAIR_BASE + PAIR_SIZE;
const BRANCH_SIZE: u32 = OPS * 2;
const STOP_BASE: u32 = BRANCH_BASE + BRANCH_SIZE;
const STOP_SIZE: u32 = 4;
const EXIT_BASE: u32 = STOP_BASE + STOP_SIZE;
const EXIT_SIZE: u32 = 6;
const COUNTER_BASE: u32 = EXIT_BASE + EXIT_SIZE;
const COUNTER_SIZE: u32 = BUCKETED_COUNTERS.len() as u32 * 16;
const EVENT_BASE: u32 = COUNTER_BASE + COUNTER_SIZE;
const EVENT_SIZE: u32 = 7 * 16;
const TRACE_LEN_BASE: u32 = EVENT_BASE + EVENT_SIZE;
const TRACE_LEN_SIZE: u32 = 17;
const OUTCOME_BASE: u32 = TRACE_LEN_BASE + TRACE_LEN_SIZE;
const OUTCOME_SIZE: u32 = 10;
const RECOVERY_BASE: u32 = OUTCOME_BASE + OUTCOME_SIZE;
const RECOVERY_SIZE: u32 = 7;

/// Total feature-space size.
pub const MAP_SIZE: usize = (RECOVERY_BASE + RECOVERY_SIZE) as usize;

/// The `itr-stats` counters bucketed into telemetry features.
const BUCKETED_COUNTERS: &[(&str, &str)] = &[
    ("pipeline", "mispredicts"),
    ("pipeline", "retry_flushes"),
    ("pipeline", "icache_misses"),
    ("pipeline", "dcache_misses"),
    ("pipeline", "spc_violations"),
    ("itr", "mismatches"),
    ("itr", "retries"),
    ("itr", "machine_checks"),
    ("itr", "recovery_loss_instrs"),
    ("itr", "detection_loss_instrs"),
    ("itr_cache", "hits"),
    ("itr_cache", "misses"),
    ("itr_cache", "evictions"),
    ("itr_cache", "evictions_unreferenced"),
];

/// log₂ bucket of a counter value, clamped to 0..16.
fn bucket(v: u64) -> u32 {
    (64 - v.leading_zeros()).min(15)
}

/// Feature: committed opcode pair `prev → cur`.
pub fn pair_feature(prev_id: u8, cur_id: u8) -> u32 {
    PAIR_BASE + u32::from(prev_id).min(OPS - 1) * OPS + u32::from(cur_id).min(OPS - 1)
}

/// Feature: branch opcode with its resolved direction.
pub fn branch_feature(op_id: u8, taken: bool) -> u32 {
    BRANCH_BASE + u32::from(op_id).min(OPS - 1) * 2 + u32::from(taken)
}

/// Feature: why the functional reference stopped.
pub fn stop_feature(stop: StopReason) -> u32 {
    let k = match stop {
        StopReason::Halted => 0,
        StopReason::Aborted(_) => 1,
        StopReason::DecodeError(_) => 2,
        StopReason::InstrLimit => 3,
    };
    STOP_BASE + k
}

/// Feature: how the pipeline run exited.
pub fn exit_feature(exit: RunExit) -> u32 {
    let k = match exit {
        RunExit::Halted => 0,
        RunExit::Aborted(_) => 1,
        RunExit::MachineCheck { .. } => 2,
        RunExit::Deadlock => 3,
        RunExit::CycleLimit => 4,
        RunExit::Stopped => 5,
    };
    EXIT_BASE + k
}

/// Features: bucketed telemetry counters of one run's report.
pub fn counter_features(report: &Report, out: &mut Vec<u32>) {
    for (i, (section, name)) in BUCKETED_COUNTERS.iter().enumerate() {
        let v = report.counter(section, name).unwrap_or(0);
        out.push(COUNTER_BASE + i as u32 * 16 + bucket(v));
    }
}

/// Feature: one ITR-unit event kind, bucketed by occurrence count.
pub fn event_feature(event: &ItrEvent, count: u64) -> u32 {
    let k = match event {
        ItrEvent::Mismatch { .. } => 0,
        ItrEvent::RetryInitiated { .. } => 1,
        ItrEvent::RecoverySuccess { .. } => 2,
        ItrEvent::MachineCheck { .. } => 3,
        ItrEvent::CacheFaultRepaired { .. } => 4,
        ItrEvent::MissCommitted { .. } => 5,
        ItrEvent::EvictionUnreferenced { .. } => 6,
    };
    EVENT_BASE + k * 16 + bucket(count)
}

/// Feature: an observed dynamic trace length (1..=16).
pub fn trace_len_feature(len: u32) -> u32 {
    TRACE_LEN_BASE + len.min(TRACE_LEN_SIZE - 1)
}

/// Feature: a Figure-8 fault outcome produced by the classifier.
pub fn outcome_feature(outcome: itr_faults::Outcome) -> u32 {
    let idx = itr_faults::Outcome::ALL.iter().position(|&o| o == outcome).unwrap_or(0);
    OUTCOME_BASE + (idx as u32).min(OUTCOME_SIZE - 1)
}

/// Feature: a ground-truth recovery outcome produced by `itr-recover`.
pub fn recovery_feature(outcome: itr_recover::ActualOutcome) -> u32 {
    let idx = itr_recover::ActualOutcome::ALL.iter().position(|&o| o == outcome).unwrap_or(0);
    RECOVERY_BASE + (idx as u32).min(RECOVERY_SIZE - 1)
}

/// The global seen-feature bitmap.
#[derive(Debug, Clone)]
pub struct CoverageMap {
    seen: Vec<bool>,
    covered: usize,
}

impl Default for CoverageMap {
    fn default() -> CoverageMap {
        CoverageMap::new()
    }
}

impl CoverageMap {
    /// An empty map over the full feature space.
    pub fn new() -> CoverageMap {
        CoverageMap { seen: vec![false; MAP_SIZE], covered: 0 }
    }

    /// Marks `features` seen; returns how many were new. Out-of-range
    /// features (impossible by construction) are ignored.
    pub fn observe(&mut self, features: &[u32]) -> usize {
        let mut new = 0;
        for &f in features {
            if let Some(slot) = self.seen.get_mut(f as usize) {
                if !*slot {
                    *slot = true;
                    new += 1;
                }
            }
        }
        self.covered += new;
        new
    }

    /// Total features lit so far.
    pub fn covered(&self) -> usize {
        self.covered
    }

    /// Whether feature `f` has been lit (out-of-range reads as lit, so
    /// impossible features never count as novelty).
    pub fn is_seen(&self, f: u32) -> bool {
        self.seen.get(f as usize).copied().unwrap_or(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_ranges_are_disjoint_and_in_bounds() {
        let all = [
            pair_feature(65, 65),
            branch_feature(65, true),
            stop_feature(StopReason::InstrLimit),
            exit_feature(RunExit::Stopped),
            COUNTER_BASE + COUNTER_SIZE - 1,
            event_feature(&ItrEvent::EvictionUnreferenced { start_pc: 0, len: 1 }, u64::MAX),
            trace_len_feature(16),
        ];
        for f in all {
            assert!((f as usize) < MAP_SIZE, "feature {f} out of range");
        }
        assert!(pair_feature(65, 65) < BRANCH_BASE);
        assert!(branch_feature(65, true) < STOP_BASE);
        assert!(stop_feature(StopReason::InstrLimit) < EXIT_BASE);
        assert!(exit_feature(RunExit::Stopped) < COUNTER_BASE);
    }

    #[test]
    fn observe_counts_only_new_features() {
        let mut map = CoverageMap::new();
        assert_eq!(map.observe(&[1, 2, 3]), 3);
        assert_eq!(map.observe(&[2, 3, 4]), 1);
        assert_eq!(map.covered(), 4);
    }

    #[test]
    fn buckets_are_logarithmic() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(1024), 11);
        assert_eq!(bucket(u64::MAX), 15);
    }
}
