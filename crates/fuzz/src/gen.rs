//! Structure-aware `rISA` program generation.
//!
//! Random *words* would spend the whole fuzzing budget in the decoder's
//! error path; random *instruction soup* would almost never terminate or
//! repeat. This generator instead emits programs with the structure the
//! ITR paper cares about — straight-line arithmetic, guarded forward
//! skips, and bounded counted loops whose traces repeat — so every input
//! exercises the trace builder, the ITR cache and the retry machinery.
//!
//! Termination is by construction: backward branches exist only as
//! counted down-loops whose counter register is written nowhere else,
//! and every program ends in `trap HALT`. Stores go through a dedicated
//! base register (see [`sanitize`]) so no generated or mutated program
//! can overwrite its own text — self-modifying code would make the
//! functional simulator (fetch at execute) and the pipeline (fetch ahead)
//! diverge for reasons that are not bugs.

use crate::case::FuzzCase;
use itr_isa::{trap, Instruction, Opcode, SignalFlags, Syntax};
use itr_stats::SplitMix64;

/// General-purpose integer pool the generator allocates from.
pub const INT_POOL: &[u8] = &[8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19];
/// Loop-counter registers (never written by loop bodies).
pub const LOOP_POOL: &[u8] = &[20, 21, 22];
/// The data-segment base pointer every store indexes through.
pub const DATA_PTR: u8 = 24;
/// FP register pool.
pub const FP_POOL: &[u8] = &[0, 1, 2, 3, 4, 5, 6, 7];

/// Three-register ALU opcodes the generator samples.
const ALU3: &[Opcode] = &[
    Opcode::Add,
    Opcode::Sub,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Nor,
    Opcode::Slt,
    Opcode::Sltu,
    Opcode::Mul,
    Opcode::Div,
    Opcode::Rem,
];
const ALUI: &[Opcode] =
    &[Opcode::Addi, Opcode::Slti, Opcode::Sltiu, Opcode::Andi, Opcode::Ori, Opcode::Xori];
const SHIFT: &[Opcode] = &[Opcode::Sll, Opcode::Srl, Opcode::Sra];
const SHIFTV: &[Opcode] = &[Opcode::Sllv, Opcode::Srlv, Opcode::Srav];
const LOAD: &[Opcode] = &[Opcode::Lw, Opcode::Lb, Opcode::Lbu, Opcode::Lh, Opcode::Lhu];
const STORE: &[Opcode] = &[Opcode::Sw, Opcode::Sb, Opcode::Sh];
const BRANCH2: &[Opcode] = &[Opcode::Beq, Opcode::Bne];
const BRANCH1: &[Opcode] = &[Opcode::Blez, Opcode::Bgtz, Opcode::Bltz, Opcode::Bgez];
const FP3: &[Opcode] = &[Opcode::AddS, Opcode::SubS, Opcode::MulS, Opcode::DivS];
const FP2: &[Opcode] =
    &[Opcode::AbsS, Opcode::MovS, Opcode::NegS, Opcode::CvtSW, Opcode::CvtWS, Opcode::SqrtS];
const FPCMP: &[Opcode] = &[Opcode::CEqS, Opcode::CLtS, Opcode::CLeS];

fn pick<T: Copy>(rng: &mut SplitMix64, pool: &[T]) -> T {
    pool[rng.gen_range(0..pool.len())]
}

/// One random body (non-branch) instruction.
fn body_instr(rng: &mut SplitMix64) -> Instruction {
    match rng.gen_range(0u32..100) {
        0..=29 => Instruction::rrr(
            pick(rng, ALU3),
            pick(rng, INT_POOL),
            pick(rng, INT_POOL),
            pick(rng, INT_POOL),
        ),
        30..=49 => Instruction::rri(
            pick(rng, ALUI),
            pick(rng, INT_POOL),
            pick(rng, INT_POOL),
            rng.gen_range(-128i32..128),
        ),
        50..=57 => Instruction::shift(
            pick(rng, SHIFT),
            pick(rng, INT_POOL),
            pick(rng, INT_POOL),
            rng.gen_range(0u8..32),
        ),
        58..=61 => Instruction::rrr(
            pick(rng, SHIFTV),
            pick(rng, INT_POOL),
            pick(rng, INT_POOL),
            pick(rng, INT_POOL),
        ),
        62..=64 => Instruction::rri(Opcode::Lui, pick(rng, INT_POOL), 0, rng.gen_range(0i32..256)),
        65..=76 => Instruction::mem(
            pick(rng, LOAD),
            pick(rng, INT_POOL),
            DATA_PTR,
            rng.gen_range(0i32..256),
        ),
        77..=86 => Instruction::mem(
            pick(rng, STORE),
            pick(rng, INT_POOL),
            DATA_PTR,
            rng.gen_range(0i32..256),
        ),
        87..=89 => Instruction::mem(
            Opcode::Lwc1,
            pick(rng, FP_POOL),
            DATA_PTR,
            4 * rng.gen_range(0i32..64),
        ),
        90..=91 => Instruction::mem(
            Opcode::Swc1,
            pick(rng, FP_POOL),
            DATA_PTR,
            4 * rng.gen_range(0i32..64),
        ),
        92..=95 => Instruction::rrr(
            pick(rng, FP3),
            pick(rng, FP_POOL),
            pick(rng, FP_POOL),
            pick(rng, FP_POOL),
        ),
        96..=97 => Instruction::rrr(pick(rng, FP2), pick(rng, FP_POOL), pick(rng, FP_POOL), 0),
        _ => Instruction::rrr(pick(rng, FPCMP), 0, pick(rng, FP_POOL), pick(rng, FP_POOL)),
    }
}

/// A straight-line run of body instructions.
fn straight(rng: &mut SplitMix64, out: &mut Vec<Instruction>, len: usize) {
    for _ in 0..len {
        out.push(body_instr(rng));
    }
}

/// A guarded forward skip: `branch +k` over `k` body instructions.
fn forward_skip(rng: &mut SplitMix64, out: &mut Vec<Instruction>) {
    let k = rng.gen_range(1i32..4);
    let br = match rng.gen_range(0u32..10) {
        0..=4 => {
            Instruction::branch(pick(rng, BRANCH2), pick(rng, INT_POOL), pick(rng, INT_POOL), k)
        }
        5..=8 => Instruction::branch(pick(rng, BRANCH1), pick(rng, INT_POOL), 0, k),
        _ => Instruction::branch(
            if rng.gen_bool(0.5) { Opcode::Bc1t } else { Opcode::Bc1f },
            0,
            0,
            k,
        ),
    };
    out.push(br);
    straight(rng, out, k as usize);
}

/// A counted down-loop: `li cnt, trips; top: body…; addi cnt,cnt,-1;
/// bne cnt, r0, top`. The counter register is written nowhere else, so
/// the loop always terminates.
fn counted_loop(rng: &mut SplitMix64, out: &mut Vec<Instruction>) {
    let cnt = pick(rng, LOOP_POOL);
    let trips = rng.gen_range(1i32..9);
    out.push(Instruction::rri(Opcode::Addi, cnt, 0, trips));
    let top = out.len();
    let body = rng.gen_range(2usize..7);
    straight(rng, out, body);
    if rng.gen_bool(0.3) {
        forward_skip(rng, out);
    }
    out.push(Instruction::rri(Opcode::Addi, cnt, cnt, -1));
    let back = top as i32 - (out.len() as i32 + 1);
    out.push(Instruction::branch(Opcode::Bne, cnt, 0, back));
}

/// Generates a fresh structured program of roughly `target_len`
/// instructions (clamped to a handful of blocks).
pub fn generate(rng: &mut SplitMix64, target_len: usize) -> FuzzCase {
    let mut text = Vec::with_capacity(target_len + 16);
    // Prologue: the data base pointer and a few live values.
    text.push(Instruction::rri(Opcode::Lui, DATA_PTR, 0, (itr_isa::DATA_BASE >> 16) as i32));
    text.push(Instruction::rri(
        Opcode::Ori,
        DATA_PTR,
        DATA_PTR,
        (itr_isa::DATA_BASE & 0xFFFF) as i32,
    ));
    for _ in 0..rng.gen_range(2usize..5) {
        text.push(Instruction::rri(
            Opcode::Addi,
            pick(rng, INT_POOL),
            0,
            rng.gen_range(-100i32..100),
        ));
    }
    while text.len() < target_len {
        match rng.gen_range(0u32..10) {
            0..=3 => {
                let n = rng.gen_range(3usize..9);
                straight(rng, &mut text, n);
            }
            4..=6 => forward_skip(rng, &mut text),
            7..=8 => counted_loop(rng, &mut text),
            _ => {
                // Unconditional forward jump over a small shadow region.
                let k = rng.gen_range(1u32..4);
                let target = text.len() as u32 + 1 + k;
                text.push(Instruction::jump(Opcode::J, (itr_isa::TEXT_BASE as u32 >> 2) + target));
                straight(rng, &mut text, k as usize);
            }
        }
    }
    if rng.gen_bool(0.4) {
        // Print one live value through `trap PUT_INT` (reads r4).
        text.push(Instruction::rri(Opcode::Addi, 4, pick(rng, INT_POOL), 0));
        text.push(Instruction::trap(trap::PUT_INT));
    }
    text.push(Instruction::trap(trap::HALT));

    let data: Vec<u8> = (0..rng.gen_range(64usize..257)).map(|_| rng.next_u64() as u8).collect();
    let mut case = FuzzCase { text, data, entry: 0 };
    sanitize(&mut case);
    case
}

/// `true` when `inst` writes the given *integer* register.
pub(crate) fn writes_int_reg(inst: &Instruction, reg: u8) -> bool {
    let p = inst.op.props();
    if p.num_rdst == 0 || p.flags.contains(SignalFlags::IS_FP) && inst.op != Opcode::Mfc1 {
        return false;
    }
    match p.syntax {
        Syntax::ThreeReg | Syntax::Shift | Syntax::ShiftV | Syntax::TwoReg => inst.rd == reg,
        Syntax::TwoRegImm | Syntax::RegImm16 => inst.rt == reg,
        Syntax::Mem => p.flags.contains(SignalFlags::IS_LD) && inst.rt == reg,
        Syntax::FpMove => inst.op == Opcode::Mfc1 && inst.rt == reg,
        _ => false,
    }
}

/// Restores the case-level safety invariants after generation, mutation
/// or shrinking:
///
/// * every store's base register is [`DATA_PTR`] with a non-negative
///   offset, and nothing past the two-instruction prologue writes
///   [`DATA_PTR`] — so stores land in `[r24, r24 + 32 KiB)`, which is the
///   data segment when the prologue ran and low memory (below the text
///   base) when a mutation removed it: text is never overwritten;
/// * the entry index stays inside the text segment.
pub fn sanitize(case: &mut FuzzCase) {
    for (i, inst) in case.text.iter_mut().enumerate() {
        if inst.op.is_store() {
            inst.rs = DATA_PTR;
            inst.imm &= 0x7FFF;
        }
        if i >= 2 && writes_int_reg(inst, DATA_PTR) {
            let p = inst.op.props().syntax;
            match p {
                Syntax::ThreeReg | Syntax::Shift | Syntax::ShiftV | Syntax::TwoReg => {
                    inst.rd = DATA_PTR - 1;
                }
                _ => inst.rt = DATA_PTR - 1,
            }
        }
    }
    if !case.text.is_empty() {
        case.entry = case.entry.min(case.text.len() as u32 - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itr_sim::{FuncSim, StopReason};

    #[test]
    fn generated_programs_halt_within_budget() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..40 {
            let case = generate(&mut rng, 48);
            let p = case.program();
            let mut sim = FuncSim::new(&p);
            let stop = sim.run(200_000);
            assert_eq!(stop, StopReason::Halted, "case {:#018x}", case.fingerprint());
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(&mut SplitMix64::new(3), 64);
        let b = generate(&mut SplitMix64::new(3), 64);
        assert_eq!(a, b);
        let c = generate(&mut SplitMix64::new(4), 64);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn sanitize_pins_store_bases_and_data_ptr() {
        let mut rng = SplitMix64::new(11);
        for _ in 0..20 {
            let case = generate(&mut rng, 40);
            for (i, inst) in case.text.iter().enumerate() {
                if inst.op.is_store() {
                    assert_eq!(inst.rs, DATA_PTR, "store base at {i}");
                    assert!(inst.imm >= 0, "store offset at {i}");
                }
                if i >= 2 {
                    assert!(!writes_int_reg(inst, DATA_PTR), "data ptr clobbered at {i}");
                }
            }
        }
    }
}
