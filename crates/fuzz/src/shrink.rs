//! Delta-debugging shrinker for findings.
//!
//! Classic ddmin over the text segment: try removing progressively
//! smaller chunks, then try replacing single instructions with `nop`,
//! keeping every candidate that still reproduces the finding. Each
//! candidate is re-[`sanitize`]d so shrunken cases obey the same
//! store-safety invariant as generated ones, and the whole search runs
//! under a fixed evaluation budget so shrinking a pathological case
//! cannot stall the fuzzer.

use crate::case::FuzzCase;
use crate::gen::sanitize;
use itr_isa::Instruction;

/// Maximum number of predicate evaluations one shrink may spend.
pub const DEFAULT_BUDGET: usize = 128;

/// Shrinks `case` while `reproduces` keeps returning `true` for the
/// candidate, returning the smallest reproducer found. The predicate is
/// called at most `budget` times; the input case itself is assumed to
/// reproduce (callers shrink only confirmed findings).
pub fn shrink(
    case: &FuzzCase,
    budget: usize,
    reproduces: &mut dyn FnMut(&FuzzCase) -> bool,
) -> FuzzCase {
    let mut best = case.clone();
    let mut evals = 0usize;
    let mut try_candidate = |cand: &mut FuzzCase, evals: &mut usize| -> bool {
        if *evals >= budget || cand.text.is_empty() {
            return false;
        }
        sanitize(cand);
        *evals += 1;
        reproduces(cand)
    };

    // Phase 1: ddmin chunk removal, halving chunk size each round.
    let mut chunk = (best.text.len() / 2).max(1);
    while chunk >= 1 && evals < budget {
        let mut shrunk_this_round = false;
        let mut start = 0;
        while start < best.text.len() && evals < budget {
            let end = (start + chunk).min(best.text.len());
            if end - start == best.text.len() {
                break; // never remove everything
            }
            let mut cand = best.clone();
            cand.text.drain(start..end);
            if cand.entry as usize >= cand.text.len() {
                cand.entry = 0;
            }
            if try_candidate(&mut cand, &mut evals) {
                best = cand;
                shrunk_this_round = true;
                // Re-scan from the same offset: the next chunk slid in.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !shrunk_this_round {
            break;
        }
        if !shrunk_this_round {
            chunk /= 2;
        }
    }

    // Phase 2: neutralize single instructions that cannot be removed
    // outright (e.g. they keep a branch offset aligned).
    let mut i = 0;
    while i < best.text.len() && evals < budget {
        if best.text[i] != Instruction::nop() {
            let mut cand = best.clone();
            cand.text[i] = Instruction::nop();
            if try_candidate(&mut cand, &mut evals) {
                best = cand;
            }
        }
        i += 1;
    }

    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use itr_isa::Opcode;
    use itr_stats::SplitMix64;

    #[test]
    fn shrink_preserves_the_predicate() {
        let case = gen::generate(&mut SplitMix64::new(11), 60);
        // "Finding": the case contains at least one Mul instruction.
        let has_mul = |c: &FuzzCase| c.text.iter().any(|i| i.op == Opcode::Mul);
        if !has_mul(&case) {
            return; // generator happened not to emit one; nothing to test
        }
        let mut pred = |c: &FuzzCase| has_mul(c);
        let small = shrink(&case, DEFAULT_BUDGET, &mut pred);
        assert!(has_mul(&small), "shrunk case must still reproduce");
        assert!(small.text.len() <= case.text.len());
    }

    #[test]
    fn shrink_reaches_a_minimal_core() {
        let case = gen::generate(&mut SplitMix64::new(12), 80);
        let mut pred = |c: &FuzzCase| !c.text.is_empty();
        let small = shrink(&case, DEFAULT_BUDGET, &mut pred);
        assert!(small.text.len() <= 2, "trivial predicate shrinks to near-nothing");
    }

    #[test]
    fn shrink_respects_the_budget() {
        let case = gen::generate(&mut SplitMix64::new(13), 120);
        let mut calls = 0usize;
        let mut pred = |_: &FuzzCase| {
            calls += 1;
            false
        };
        let out = shrink(&case, 10, &mut pred);
        assert!(calls <= 10);
        assert_eq!(out.text.len(), case.text.len(), "nothing reproduced, nothing removed");
    }

    #[test]
    fn shrunk_cases_keep_the_store_safety_invariant() {
        let case = gen::generate(&mut SplitMix64::new(14), 60);
        let mut pred = |c: &FuzzCase| c.text.len() > 4;
        let small = shrink(&case, DEFAULT_BUDGET, &mut pred);
        for inst in &small.text {
            if inst.op.is_store() {
                assert_eq!(inst.rs, crate::gen::DATA_PTR);
                assert!(inst.imm >= 0);
            }
        }
    }
}
