//! `itr-fuzz` — coverage-guided differential fuzzing of the simulator
//! and ITR detection stack.
//!
//! ```text
//! itr-fuzz run [--seed N] [--iters N] [--time-secs N] [--mode quick|full]
//!              [--out DIR] [--no-seeding]
//! itr-fuzz replay CASE.json [CASE.json ...]
//! ```
//!
//! `run` executes a deterministic fuzzing campaign: same seed and budget
//! → byte-identical `fuzz_stats.json` and findings. Findings (shrunken
//! reproducers) are written to `OUT/findings/case-NNN.json`; promote the
//! ones worth keeping to `tests/fuzz_regressions/`. Exit status: 0 when
//! every oracle held, 1 on findings, 2 on usage errors.
//!
//! `replay` re-runs persisted findings under their recorded budgets.
//! Exit status: 0 when nothing reproduces (regressions stay fixed), 1
//! when a case still fails, 2 on usage or parse errors.

use itr_fuzz::{FuzzConfig, RegressionCase};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

const HELP: &str = "\
itr-fuzz — coverage-guided differential fuzzing of the ITR reproduction

USAGE:
    itr-fuzz run [OPTIONS]
    itr-fuzz replay CASE.json [CASE.json ...]

RUN OPTIONS:
    --seed N         master RNG seed (default 1)
    --iters N        mutation iterations (default 1000)
    --time-secs N    additional wall-clock budget; stops early when hit
    --mode quick|full  budget preset (default full; quick = smoke scale)
    --out DIR        output directory (default fuzz-out/)
    --no-seeding     skip the itr-workloads seed corpus
";

fn run_cmd(args: &[String]) -> Result<ExitCode, String> {
    let mut seed = 1u64;
    let mut iters = 1000u64;
    let mut time_secs: Option<u64> = None;
    let mut mode = "full".to_string();
    let mut out = PathBuf::from("fuzz-out");
    let mut no_seeding = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--seed" => seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--iters" => iters = value("--iters")?.parse().map_err(|e| format!("--iters: {e}"))?,
            "--time-secs" => {
                time_secs =
                    Some(value("--time-secs")?.parse().map_err(|e| format!("--time-secs: {e}"))?);
            }
            "--mode" => mode = value("--mode")?,
            "--out" => out = PathBuf::from(value("--out")?),
            "--no-seeding" => no_seeding = true,
            "--help" | "-h" => {
                print!("{HELP}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }

    let mut cfg = match mode.as_str() {
        "quick" => FuzzConfig::quick(seed, iters),
        "full" => FuzzConfig { seed, iters, ..FuzzConfig::default() },
        other => return Err(format!("--mode must be quick or full, got `{other}`")),
    };
    cfg.skip_seeding = no_seeding;

    let deadline = time_secs.map(|s| Instant::now() + Duration::from_secs(s));
    let cancelled = move || deadline.is_some_and(|d| Instant::now() >= d);

    eprintln!("itr-fuzz: mode={mode} seed={seed} iters={iters}");
    let started = Instant::now();
    let outcome = itr_fuzz::run(&cfg, &cancelled);

    std::fs::create_dir_all(&out).map_err(|e| format!("create {}: {e}", out.display()))?;
    let stats_path = out.join("fuzz_stats.json");
    std::fs::write(&stats_path, outcome.stats_value(&cfg).to_json())
        .map_err(|e| format!("write {}: {e}", stats_path.display()))?;
    let findings_dir = out.join("findings");
    if !outcome.findings.is_empty() {
        std::fs::create_dir_all(&findings_dir)
            .map_err(|e| format!("create {}: {e}", findings_dir.display()))?;
    }
    for (i, rc) in outcome.findings.iter().enumerate() {
        let path = findings_dir.join(format!("case-{i:03}.json"));
        std::fs::write(&path, rc.to_json())
            .map_err(|e| format!("write {}: {e}", path.display()))?;
        eprintln!("itr-fuzz: finding [{}] -> {}", rc.kind.label(), path.display());
    }

    let s = &outcome.stats;
    eprintln!(
        "itr-fuzz: {} iterations ({} seeds) in {:.1}s — coverage {}, corpus {} \
         (digest {:#018x}), {} findings",
        s.iterations,
        s.seeds,
        started.elapsed().as_secs_f64(),
        s.coverage,
        s.corpus_len,
        s.corpus_digest,
        s.findings(),
    );
    eprintln!("itr-fuzz: stats -> {}", stats_path.display());
    if s.findings() > 0 {
        eprintln!("itr-fuzz: ORACLE VIOLATIONS FOUND — inspect {}", findings_dir.display());
        return Ok(ExitCode::from(1));
    }
    Ok(ExitCode::SUCCESS)
}

fn replay_cmd(args: &[String]) -> Result<ExitCode, String> {
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{HELP}");
        return if args.is_empty() {
            Err("replay needs at least one case file".into())
        } else {
            Ok(ExitCode::SUCCESS)
        };
    }
    let mut reproduced = 0usize;
    for path in args {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        let rc = RegressionCase::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
        match rc.reproduces() {
            Some(finding) => {
                reproduced += 1;
                eprintln!("itr-fuzz: {path}: STILL FAILS [{}]", finding.kind.label());
                eprintln!("{}", finding.detail);
            }
            None => eprintln!("itr-fuzz: {path}: ok [{}]", rc.kind.label()),
        }
    }
    if reproduced > 0 {
        eprintln!("itr-fuzz: {reproduced}/{} cases reproduce", args.len());
        return Ok(ExitCode::from(1));
    }
    eprintln!("itr-fuzz: all {} cases hold", args.len());
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => run_cmd(&args[1..]),
        Some("replay") => replay_cmd(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print!("{HELP}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command `{other}` (try --help)")),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("itr-fuzz: {e}");
            ExitCode::from(2)
        }
    }
}
