//! `itr-fuzz` — coverage-guided differential fuzzing of the simulator
//! and ITR detection stack.
//!
//! ```text
//! itr-fuzz run [--seed N] [--iters N] [--time-secs N] [--mode quick|full]
//!              [--schedule power|uniform] [--out DIR] [--no-seeding]
//! itr-fuzz replay CASE.json [CASE.json ...]
//! itr-fuzz serve [--port N] [--max-iters N] [--sync-dir DIR] [--worker N]
//!                [--warm-start URL] [--out DIR] [run options]
//! itr-fuzz ab [--seed N] [--iters N] [--mode quick|full] [--no-seeding]
//! itr-fuzz gap-ab [--seed N] [--iters N] [--mode quick|full] [--no-seeding]
//! itr-fuzz corpus CORPUS.jsonl
//! ```
//!
//! `run` executes a deterministic fuzzing campaign: same seed and budget
//! → byte-identical `fuzz_stats.json` and findings. Findings (shrunken
//! reproducers) are written to `OUT/findings/case-NNN.json`; promote the
//! ones worth keeping to `tests/fuzz_regressions/`. Exit status: 0 when
//! every oracle held, 1 on findings, 2 on usage errors.
//!
//! `replay` re-runs persisted findings under their recorded budgets.
//! Exit status: 0 when nothing reproduces (regressions stay fixed), 1
//! when a case still fails, 2 on usage or parse errors.
//!
//! `serve` runs a long-lived campaign behind `GET /stats`,
//! `GET /findings`, `GET /corpus` and `POST /shutdown` on localhost,
//! optionally syncing its corpus with peer shards through `--sync-dir`
//! and warm-starting from a running peer's `/corpus` export with
//! `--warm-start`.
//!
//! `ab` runs the uniform baseline for the iteration budget, notes the
//! coverage it reached and how many oracle executions it spent, then
//! runs the power scheduler until it matches that coverage. Exit status:
//! 0 when the scheduler needs no more executions than the baseline.
//!
//! `gap-ab` is the same race with gap closures as the currency: the
//! undirected engine runs the budget, then the analysis-directed engine
//! must reach 95% of its final gap-closure count in no more executions.
//! Exit status mirrors `ab`.
//!
//! `corpus` parses a persisted `itr-fuzz-sync/v1` corpus and reports its
//! size and digest — CI's check that a serve campaign's corpus reloads.

use itr_fuzz::{FuzzConfig, Fuzzer, RegressionCase, Schedule, ServeConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

const HELP: &str = "\
itr-fuzz — coverage-guided differential fuzzing of the ITR reproduction

USAGE:
    itr-fuzz run [OPTIONS]
    itr-fuzz replay CASE.json [CASE.json ...]
    itr-fuzz serve [OPTIONS]
    itr-fuzz ab [OPTIONS]
    itr-fuzz gap-ab [OPTIONS]
    itr-fuzz corpus CORPUS.jsonl

RUN OPTIONS:
    --seed N         master RNG seed (default 1)
    --iters N        mutation iterations (default 1000)
    --time-secs N    additional wall-clock budget; stops early when hit
    --mode quick|full  budget preset (default full; quick = smoke scale)
    --schedule power|uniform  corpus selection policy (default power)
    --directed       analysis-directed mutation: target the gap report's
                     uncovered CFG edges and never-formed traces
    --out DIR        output directory (default fuzz-out/)
    --no-seeding     skip the itr-workloads seed corpus

SERVE OPTIONS (plus the run options above):
    --port N         TCP port (default 0 = ephemeral; bound port printed
                     as `itr-fuzz: serving on PORT`)
    --max-iters N    stop after N iterations (default 0 = until shutdown)
    --sync-dir DIR   shared directory for cross-shard corpus sync
    --worker N       this worker's shard index (default 0)
    --warm-start URL import a running peer's GET /corpus export before
                     the first batch (host:port, path defaults /corpus)

AB / GAP-AB OPTIONS:
    --seed N, --iters N, --mode, --no-seeding as for run
";

/// Consumes the engine-level flags shared by `run`, `serve` and `ab`
/// (`--seed`, `--iters`, `--mode`, `--schedule`, `--no-seeding`) and
/// returns the resulting config plus the unconsumed arguments.
fn parse_fuzz_flags(args: &[String]) -> Result<(FuzzConfig, Vec<String>), String> {
    let mut seed = 1u64;
    let mut iters = 1000u64;
    let mut mode = "full".to_string();
    let mut schedule = Schedule::Power;
    let mut no_seeding = false;
    let mut directed = false;
    let mut rest = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--seed" => seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--iters" => iters = value("--iters")?.parse().map_err(|e| format!("--iters: {e}"))?,
            "--mode" => mode = value("--mode")?,
            "--schedule" => {
                let v = value("--schedule")?;
                schedule = Schedule::from_label(&v)
                    .ok_or_else(|| format!("--schedule must be power or uniform, got `{v}`"))?;
            }
            "--no-seeding" => no_seeding = true,
            "--directed" => directed = true,
            other => rest.push(other.to_string()),
        }
    }

    let mut cfg = match mode.as_str() {
        "quick" => FuzzConfig::quick(seed, iters),
        "full" => FuzzConfig { seed, iters, ..FuzzConfig::default() },
        other => return Err(format!("--mode must be quick or full, got `{other}`")),
    };
    cfg.schedule = schedule;
    cfg.skip_seeding = no_seeding;
    cfg.directed = directed;
    Ok((cfg, rest))
}

fn run_cmd(args: &[String]) -> Result<ExitCode, String> {
    let (cfg, rest) = parse_fuzz_flags(args)?;
    let mut time_secs: Option<u64> = None;
    let mut out = PathBuf::from("fuzz-out");

    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--time-secs" => {
                time_secs =
                    Some(value("--time-secs")?.parse().map_err(|e| format!("--time-secs: {e}"))?);
            }
            "--out" => out = PathBuf::from(value("--out")?),
            "--help" | "-h" => {
                print!("{HELP}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    let (seed, iters, schedule) = (cfg.seed, cfg.iters, cfg.schedule.label());

    let deadline = time_secs.map(|s| Instant::now() + Duration::from_secs(s));
    let cancelled = move || deadline.is_some_and(|d| Instant::now() >= d);

    eprintln!("itr-fuzz: seed={seed} iters={iters} schedule={schedule}");
    let started = Instant::now();
    let outcome = itr_fuzz::run(&cfg, &cancelled);

    std::fs::create_dir_all(&out).map_err(|e| format!("create {}: {e}", out.display()))?;
    let stats_path = out.join("fuzz_stats.json");
    std::fs::write(&stats_path, outcome.stats_value(&cfg).to_json())
        .map_err(|e| format!("write {}: {e}", stats_path.display()))?;
    let findings_dir = out.join("findings");
    if !outcome.findings.is_empty() {
        std::fs::create_dir_all(&findings_dir)
            .map_err(|e| format!("create {}: {e}", findings_dir.display()))?;
    }
    for (i, rc) in outcome.findings.iter().enumerate() {
        let path = findings_dir.join(format!("case-{i:03}.json"));
        std::fs::write(&path, rc.to_json())
            .map_err(|e| format!("write {}: {e}", path.display()))?;
        eprintln!("itr-fuzz: finding [{}] -> {}", rc.kind.label(), path.display());
    }

    let s = &outcome.stats;
    eprintln!(
        "itr-fuzz: {} iterations ({} seeds) in {:.1}s — coverage {}, corpus {} \
         (digest {:#018x}), {} findings",
        s.iterations,
        s.seeds,
        started.elapsed().as_secs_f64(),
        s.coverage,
        s.corpus_len,
        s.corpus_digest,
        s.findings(),
    );
    eprintln!("itr-fuzz: stats -> {}", stats_path.display());
    if s.findings() > 0 {
        eprintln!("itr-fuzz: ORACLE VIOLATIONS FOUND — inspect {}", findings_dir.display());
        return Ok(ExitCode::from(1));
    }
    Ok(ExitCode::SUCCESS)
}

fn replay_cmd(args: &[String]) -> Result<ExitCode, String> {
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{HELP}");
        return if args.is_empty() {
            Err("replay needs at least one case file".into())
        } else {
            Ok(ExitCode::SUCCESS)
        };
    }
    let mut reproduced = 0usize;
    for path in args {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        let rc = RegressionCase::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
        match rc.reproduces() {
            Some(finding) => {
                reproduced += 1;
                eprintln!("itr-fuzz: {path}: STILL FAILS [{}]", finding.kind.label());
                eprintln!("{}", finding.detail);
            }
            None => eprintln!("itr-fuzz: {path}: ok [{}]", rc.kind.label()),
        }
    }
    if reproduced > 0 {
        eprintln!("itr-fuzz: {reproduced}/{} cases reproduce", args.len());
        return Ok(ExitCode::from(1));
    }
    eprintln!("itr-fuzz: all {} cases hold", args.len());
    Ok(ExitCode::SUCCESS)
}

fn serve_cmd(args: &[String]) -> Result<ExitCode, String> {
    let (fuzz, rest) = parse_fuzz_flags(args)?;
    let mut cfg = ServeConfig { fuzz, ..ServeConfig::default() };
    let mut out: Option<PathBuf> = None;

    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--port" => cfg.port = value("--port")?.parse().map_err(|e| format!("--port: {e}"))?,
            "--max-iters" => {
                cfg.max_iters =
                    value("--max-iters")?.parse().map_err(|e| format!("--max-iters: {e}"))?;
            }
            "--sync-dir" => cfg.sync_dir = Some(PathBuf::from(value("--sync-dir")?)),
            "--worker" => {
                cfg.worker = value("--worker")?.parse().map_err(|e| format!("--worker: {e}"))?;
            }
            "--warm-start" => cfg.corpus_url = Some(value("--warm-start")?),
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--help" | "-h" => {
                print!("{HELP}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    cfg.out_dir = Some(out.unwrap_or_else(|| PathBuf::from("fuzz-out")));

    let outcome = itr_fuzz::serve(&cfg, &mut |port| {
        // CI and scripts parse this line to find the ephemeral port.
        println!("itr-fuzz: serving on {port}");
    })
    .map_err(|e| format!("serve: {e}"))?;
    let s = &outcome.stats;
    eprintln!(
        "itr-fuzz: campaign done — {} iterations, {} execs, coverage {}, corpus {}, {} findings",
        s.iterations,
        s.execs,
        s.coverage,
        s.corpus_len,
        s.findings(),
    );
    Ok(if s.findings() > 0 { ExitCode::from(1) } else { ExitCode::SUCCESS })
}

fn ab_cmd(args: &[String]) -> Result<ExitCode, String> {
    let (cfg, rest) = parse_fuzz_flags(args)?;
    if let Some(extra) = rest.first() {
        if extra == "--help" || extra == "-h" {
            print!("{HELP}");
            return Ok(ExitCode::SUCCESS);
        }
        return Err(format!("unknown flag `{extra}` (try --help)"));
    }

    // Baseline: uniform selection for the full iteration budget,
    // recording the coverage trajectory. The race target is 95% of the
    // baseline's final coverage — the last few features any engine finds
    // are seed luck, so racing to the exact final value measures noise,
    // while racing to the bulk of the curve measures scheduling.
    let base_cfg = FuzzConfig { schedule: Schedule::Uniform, ..cfg.clone() };
    let mut base = Fuzzer::new(base_cfg);
    base.seed(&|| false);
    let mut trajectory = vec![(base.execs(), base.coverage())];
    for _ in 0..cfg.iters {
        base.step();
        trajectory.push((base.execs(), base.coverage()));
    }
    let target = base.coverage() * 95 / 100;
    let base_execs =
        trajectory.iter().find(|&&(_, c)| c >= target).map_or_else(|| base.execs(), |&(e, _)| e);
    eprintln!(
        "itr-fuzz: uniform reached coverage {target} (95% of {}) in {base_execs} execs",
        base.coverage()
    );

    // Challenger: power scheduling until it reaches the same target
    // (capped at 4x the budget so a regression still terminates).
    let mut power = Fuzzer::new(FuzzConfig { schedule: Schedule::Power, ..cfg.clone() });
    power.seed(&|| false);
    while power.coverage() < target && power.iterations() < cfg.iters * 4 {
        power.step();
    }
    let power_execs = power.execs();
    eprintln!("itr-fuzz: power reached coverage {} in {power_execs} execs", power.coverage());

    if power.coverage() < target {
        eprintln!("itr-fuzz: A/B FAIL — power never reached the coverage target");
        return Ok(ExitCode::from(1));
    }
    if power_execs > base_execs {
        eprintln!("itr-fuzz: A/B FAIL — power spent {power_execs} execs vs uniform's {base_execs}");
        return Ok(ExitCode::from(1));
    }
    eprintln!(
        "itr-fuzz: A/B ok — power reached coverage {target} with {} of uniform's execs",
        format_args!("{power_execs}/{base_execs}")
    );
    Ok(ExitCode::SUCCESS)
}

fn gap_ab_cmd(args: &[String]) -> Result<ExitCode, String> {
    let (cfg, rest) = parse_fuzz_flags(args)?;
    if let Some(extra) = rest.first() {
        if extra == "--help" || extra == "-h" {
            print!("{HELP}");
            return Ok(ExitCode::SUCCESS);
        }
        return Err(format!("unknown flag `{extra}` (try --help)"));
    }

    // Baseline: blind (undirected) mutation for the full budget,
    // recording the gap-closure trajectory. Same 95% rationale as `ab`:
    // the last closures are seed luck, the bulk of the curve is signal.
    // Gap accounting runs identically in both engines; only the
    // mutation policy differs.
    let base_cfg = FuzzConfig { directed: false, ..cfg.clone() };
    let mut base = Fuzzer::new(base_cfg);
    base.seed(&|| false);
    let mut trajectory = vec![(base.execs(), base.gap_closures())];
    for _ in 0..cfg.iters {
        base.step();
        trajectory.push((base.execs(), base.gap_closures()));
    }
    if base.gap_closures() == 0 {
        eprintln!("itr-fuzz: gap A/B FAIL — blind baseline closed no gaps; config too small");
        return Ok(ExitCode::from(1));
    }
    let target = (base.gap_closures() * 95).div_ceil(100);
    let base_execs =
        trajectory.iter().find(|&&(_, c)| c >= target).map_or_else(|| base.execs(), |&(e, _)| e);
    eprintln!(
        "itr-fuzz: blind closed {target} gaps (95% of {}) in {base_execs} execs",
        base.gap_closures()
    );

    // Challenger: analysis-directed mutation until it matches the
    // target (capped at 4x the budget so a regression still terminates).
    let mut dir = Fuzzer::new(FuzzConfig { directed: true, ..cfg.clone() });
    dir.seed(&|| false);
    while dir.gap_closures() < target && dir.iterations() < cfg.iters * 4 {
        dir.step();
    }
    let dir_execs = dir.execs();
    eprintln!("itr-fuzz: directed closed {} gaps in {dir_execs} execs", dir.gap_closures());

    if dir.gap_closures() < target {
        eprintln!("itr-fuzz: gap A/B FAIL — directed never reached the closure target");
        return Ok(ExitCode::from(1));
    }
    if dir_execs > base_execs {
        eprintln!(
            "itr-fuzz: gap A/B FAIL — directed spent {dir_execs} execs vs blind's {base_execs}"
        );
        return Ok(ExitCode::from(1));
    }
    eprintln!(
        "itr-fuzz: gap A/B ok — directed closed {target} gaps with {} of blind's execs",
        format_args!("{dir_execs}/{base_execs}")
    );
    Ok(ExitCode::SUCCESS)
}

fn corpus_cmd(args: &[String]) -> Result<ExitCode, String> {
    let [path] = args else {
        return Err("corpus needs exactly one CORPUS.jsonl path".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let records = itr_fuzz::sync::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let digest = records.iter().fold(0u64, |h, r| h ^ r.case.fingerprint());
    eprintln!("itr-fuzz: {path}: {} cases, digest {digest:#018x}", records.len());
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => run_cmd(&args[1..]),
        Some("replay") => replay_cmd(&args[1..]),
        Some("serve") => serve_cmd(&args[1..]),
        Some("ab") => ab_cmd(&args[1..]),
        Some("gap-ab") => gap_ab_cmd(&args[1..]),
        Some("corpus") => corpus_cmd(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print!("{HELP}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command `{other}` (try --help)")),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("itr-fuzz: {e}");
            ExitCode::from(2)
        }
    }
}
