//! The fuzzer's unit of work: a self-contained, replayable `rISA`
//! program.
//!
//! A [`FuzzCase`] is a decoded instruction list plus an initial data
//! image and an entry index. Keeping instructions decoded (rather than
//! raw words) makes every mutation structure-aware by construction: the
//! mutators permute [`Instruction`] fields and re-encoding always yields
//! a valid word, so the fuzzer explores program *behaviour* rather than
//! decoder error paths.
//!
//! Cases serialize to a small JSON document (`itr-fuzz-case/v1`) so a
//! finding can be checked into `tests/fuzz_regressions/` and replayed
//! byte-for-byte later.

use itr_isa::{decode, encode, Instruction, Program, ProgramBuilder};
use itr_stats::json::Value;

/// Schema tag of the serialized case format.
pub const CASE_SCHEMA: &str = "itr-fuzz-case/v1";

/// One fuzz input: a program in mutable, structure-aware form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzCase {
    /// Decoded text segment, in program order.
    pub text: Vec<Instruction>,
    /// Initial data-segment image at `DATA_BASE`.
    pub data: Vec<u8>,
    /// Entry point, as an index into `text`.
    pub entry: u32,
}

impl FuzzCase {
    /// Builds the runnable program image.
    ///
    /// # Panics
    ///
    /// Panics when the case is empty (the generator and mutators never
    /// produce an empty case).
    pub fn program(&self) -> Program {
        assert!(!self.text.is_empty(), "empty fuzz case");
        let mut b = ProgramBuilder::new();
        let entry = (self.entry as usize).min(self.text.len() - 1);
        for (i, inst) in self.text.iter().enumerate() {
            if i == entry {
                b.label("main").expect("single `main` label");
            }
            b.push(*inst);
        }
        if !self.data.is_empty() {
            b.data_bytes(&self.data);
        }
        b.build().expect("resolved instructions always build")
    }

    /// Encoded text words (the canonical identity of the case).
    pub fn words(&self) -> Vec<u32> {
        self.text.iter().map(encode).collect()
    }

    /// Rebuilds a case from encoded words and a data image.
    ///
    /// # Errors
    ///
    /// Returns a description of the first word that does not decode.
    pub fn from_words(words: &[u32], data: &[u8], entry: u32) -> Result<FuzzCase, String> {
        if words.is_empty() {
            return Err("case has no text".to_string());
        }
        let text = words
            .iter()
            .enumerate()
            .map(|(i, &w)| decode(w).map_err(|e| format!("word {i} ({w:#010x}): {e:?}")))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FuzzCase { text, data: data.to_vec(), entry })
    }

    /// Converts an assembled [`Program`] into a mutable case — the
    /// corpus-seeding path over the `itr-workloads` suite.
    ///
    /// # Errors
    ///
    /// Returns an error when a text word does not decode or the entry
    /// point falls outside the text segment.
    pub fn from_program(p: &Program) -> Result<FuzzCase, String> {
        if p.entry() < p.text_base() {
            return Err(format!("entry {:#x} below text base", p.entry()));
        }
        let entry = (p.entry() - p.text_base()) / 4;
        if entry >= p.text().len() as u64 {
            return Err(format!("entry {:#x} beyond text", p.entry()));
        }
        FuzzCase::from_words(p.text(), p.data(), entry as u32)
    }

    /// FNV-1a fingerprint over entry, text words and data — the corpus
    /// identity used for dedup and for the deterministic stats export.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        let mut eat = |byte: u8| {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        for b in self.entry.to_le_bytes() {
            eat(b);
        }
        for w in self.words() {
            for b in w.to_le_bytes() {
                eat(b);
            }
        }
        for &b in &self.data {
            eat(b);
        }
        h
    }

    /// Serializes to the `itr-fuzz-case/v1` JSON body (text words as hex
    /// strings, data as one hex string).
    pub fn to_value(&self) -> Value {
        let text = self.words().iter().map(|w| Value::Str(format!("{w:#010x}"))).collect();
        let mut data = String::with_capacity(self.data.len() * 2);
        for b in &self.data {
            data.push_str(&format!("{b:02x}"));
        }
        Value::Object(vec![
            ("schema".to_string(), Value::Str(CASE_SCHEMA.to_string())),
            ("entry".to_string(), Value::UInt(u64::from(self.entry))),
            ("text".to_string(), Value::Array(text)),
            ("data".to_string(), Value::Str(data)),
        ])
    }

    /// Deserializes a case from its JSON body.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_value(v: &Value) -> Result<FuzzCase, String> {
        match v.get("schema").and_then(Value::as_str) {
            Some(CASE_SCHEMA) => {}
            other => return Err(format!("unsupported case schema {other:?}")),
        }
        let entry = v.get("entry").and_then(Value::as_u64).ok_or("missing entry")? as u32;
        let words = v
            .get("text")
            .and_then(Value::as_array)
            .ok_or("missing text")?
            .iter()
            .map(|w| {
                let s = w.as_str().ok_or_else(|| "text word is not a string".to_string())?;
                u32::from_str_radix(s.trim_start_matches("0x"), 16)
                    .map_err(|e| format!("text word `{s}`: {e}"))
            })
            .collect::<Result<Vec<u32>, String>>()?;
        let hex = v.get("data").and_then(Value::as_str).unwrap_or("");
        if !hex.len().is_multiple_of(2) {
            return Err("odd-length data hex".to_string());
        }
        let data = (0..hex.len() / 2)
            .map(|i| {
                u8::from_str_radix(&hex[2 * i..2 * i + 2], 16)
                    .map_err(|e| format!("data byte {i}: {e}"))
            })
            .collect::<Result<Vec<u8>, String>>()?;
        FuzzCase::from_words(&words, &data, entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itr_isa::{trap, Opcode};

    fn tiny() -> FuzzCase {
        FuzzCase {
            text: vec![
                Instruction::rri(Opcode::Addi, 8, 0, 7),
                Instruction::rrr(Opcode::Add, 9, 8, 8),
                Instruction::trap(trap::HALT),
            ],
            data: vec![1, 2, 3, 4],
            entry: 0,
        }
    }

    #[test]
    fn program_round_trips_through_words() {
        let case = tiny();
        let p = case.program();
        assert_eq!(p.text(), case.words().as_slice());
        assert_eq!(p.entry(), p.text_base());
        let back = FuzzCase::from_program(&p).unwrap();
        assert_eq!(back, case);
    }

    #[test]
    fn json_round_trip_preserves_identity() {
        let case = tiny();
        let text = case.to_value().to_json();
        let back = FuzzCase::from_value(&Value::parse(&text).unwrap()).unwrap();
        assert_eq!(back, case);
        assert_eq!(back.fingerprint(), case.fingerprint());
    }

    #[test]
    fn entry_offset_survives_the_round_trip() {
        let case = FuzzCase { entry: 1, ..tiny() };
        let p = case.program();
        assert_eq!(p.entry(), p.text_base() + 4);
        assert_eq!(FuzzCase::from_program(&p).unwrap().entry, 1);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(FuzzCase::from_value(&Value::parse("{}").unwrap()).is_err());
        assert!(FuzzCase::from_words(&[], &[], 0).is_err());
    }
}
