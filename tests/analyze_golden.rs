//! Golden-baseline and oracle-sensitivity tests for `itr-analyze`.
//!
//! Three guarantees are pinned here:
//!
//! 1. The static analysis of the full workload suite matches
//!    `tests/golden_analyze.json` (regenerate with
//!    `itr-analyze --write-baseline tests/golden_analyze.json` after an
//!    intentional change).
//! 2. The static/dynamic cross-validation oracle holds for every
//!    workload at every configured trace length: each dynamic trace is
//!    a member of its static universe with a matching signature.
//! 3. The oracle has teeth: deliberately dropping fallthrough edges
//!    from the enumeration (the injected-bug drill from the issue) is
//!    caught as closure violations.

#![allow(clippy::unwrap_used)] // test code: panicking on broken expectations is the point

use itr::analyze::{
    analyze_program, cross_validate, dynamic_traces, enumerate, AnalyzeConfig, AnalyzeReport,
    EnumOptions, ProgramImage,
};
use itr::stats::json::Value;
use itr::workloads::suite::{self, WorkloadKind};

/// Suite parameters pinned to the `itr-analyze` binary defaults, which
/// is what the golden baseline was generated with.
const SEED: u64 = 0x1712_2007;
const MIMIC_INSTRS: u64 = 30_000;

fn kind_label(kind: &WorkloadKind) -> &'static str {
    match kind {
        WorkloadKind::Kernel => "kernel",
        WorkloadKind::Mimic => "mimic",
    }
}

fn full_report() -> AnalyzeReport {
    let config = AnalyzeConfig::default();
    let workloads = suite::everything(SEED, MIMIC_INSTRS)
        .iter()
        .map(|w| analyze_program(&w.name, kind_label(&w.kind), &w.program, &config))
        .collect();
    AnalyzeReport { config, workloads }
}

#[test]
fn suite_analysis_matches_golden_baseline() {
    let baseline = Value::parse(include_str!("golden_analyze.json")).unwrap();
    let report = full_report();
    if let Err(problems) = report.check_baseline(&baseline) {
        panic!("analysis drifted from tests/golden_analyze.json:\n  {}", problems.join("\n  "));
    }
}

#[test]
fn cross_validation_oracle_holds_for_every_workload_and_length() {
    let report = full_report();
    assert_eq!(report.workloads.len(), suite::everything(SEED, MIMIC_INSTRS).len());
    for w in &report.workloads {
        for len in &w.lens {
            let dynamic = len.dynamic.as_ref().expect("verify_budget > 0");
            assert!(
                dynamic.violations.is_empty(),
                "{} len {}: {} cross-validation violation(s), first: {:?}",
                w.name,
                len.max_len,
                dynamic.violations.len(),
                dynamic.violations.first(),
            );
            assert_eq!(
                dynamic.region_escapes, 0,
                "{} len {}: dynamic trace started outside the analysis region",
                w.name, len.max_len,
            );
            assert!(dynamic.checked > 0, "{} len {}: nothing verified", w.name, len.max_len);
        }
        assert_eq!(w.unreachable_instrs, 0, "{}: unreachable code", w.name);
    }
}

#[test]
fn dropping_fallthrough_edges_is_caught_by_the_oracle() {
    // The injected-enumeration-bug drill: an enumerator that forgets the
    // not-taken successor of conditional branches produces a universe
    // that the dynamic run escapes from, and the oracle must say so.
    let w = suite::by_name("sum_loop", SEED, MIMIC_INSTRS).expect("sum_loop kernel exists");
    let image = ProgramImage::new(&w.program);
    let buggy = EnumOptions { follow_fallthrough: false, ..EnumOptions::default() };
    let universe = enumerate(&image, 16, &buggy);
    let records = dynamic_traces(&w.program, 200_000, 16);
    let cv = cross_validate(&image, &universe, &records);
    assert!(
        !cv.violations.is_empty(),
        "a fallthrough-dropping enumerator must be flagged, got {cv:?}"
    );

    // And the correct enumerator over the same inputs is clean.
    let fixed = enumerate(&image, 16, &EnumOptions::default());
    let cv = cross_validate(&image, &fixed, &records);
    assert!(cv.passed(), "correct enumeration must pass: {cv:?}");
}
