//! Miniature versions of every experiment pipeline, asserting the paper's
//! qualitative claims hold end to end. (The full-scale runs live in the
//! `itr-bench` binaries; these keep the claims under test.)

#![allow(clippy::unwrap_used)] // test code: panicking on broken expectations is the point

use itr::core::{Associativity, CoverageModel, ItrCacheConfig, TraceRecord};
use itr::faults::{run_campaign, CampaignConfig};
use itr::isa::asm::assemble;
use itr::power::{
    energy_per_access_nj, AreaComparison, EnergyRow, ITR_CACHE_1024X2, POWER4_ICACHE,
};
use itr::sim::{Pipeline, PipelineConfig, RunExit};
use itr::workloads::{generate_mimic_sized, kernels, profiles, SyntheticTraceStream};
use std::collections::HashMap;

/// Figures 1–4 claim: hot benchmarks concentrate dynamic instructions in
/// few close-repeating traces; perl/vortex do not.
#[test]
fn repetition_characterization_shape() {
    fn stats(name: &str) -> (f64, f64) {
        let p = profiles::by_name(name).expect("known");
        let mut by_trace: HashMap<u64, u64> = HashMap::new();
        let mut last: HashMap<u64, u64> = HashMap::new();
        let (mut total, mut close, mut pos) = (0u64, 0u64, 0u64);
        for t in SyntheticTraceStream::new(p, 5, 300_000) {
            *by_trace.entry(t.start_pc).or_default() += t.len as u64;
            if let Some(prev) = last.insert(t.start_pc, pos) {
                if pos - prev < 5_000 {
                    close += t.len as u64;
                }
            }
            total += t.len as u64;
            pos += t.len as u64;
        }
        let mut counts: Vec<u64> = by_trace.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top100: u64 = counts.iter().take(100).sum();
        (top100 as f64 / total as f64, close as f64 / total as f64)
    }
    let (bzip_top, bzip_close) = stats("bzip");
    let (vortex_top, vortex_close) = stats("vortex");
    assert!(bzip_top > 0.9, "bzip top-100 share {bzip_top}");
    assert!(bzip_close > 0.9, "bzip within-5000 share {bzip_close}");
    assert!(vortex_top < 0.5, "vortex top-100 share {vortex_top}");
    assert!(vortex_close < 0.8, "vortex within-5000 share {vortex_close}");
}

/// Figures 6/7 claims: detection loss ≤ recovery loss everywhere; bigger
/// caches reduce vortex's loss substantially; easy benchmarks lose almost
/// nothing at the paper's default point.
#[test]
fn coverage_design_space_shape() {
    let run = |name: &str, entries: u32, assoc: Associativity| {
        let p = profiles::by_name(name).expect("known");
        let mut m = CoverageModel::new(ItrCacheConfig::new(entries, assoc));
        for t in SyntheticTraceStream::new(p, 9, 400_000) {
            m.observe(&t);
        }
        m.report()
    };
    for name in ["bzip", "gap", "vortex", "gcc", "swim"] {
        for entries in [256, 1024] {
            let r = run(name, entries, Associativity::Ways(2));
            assert!(r.detection_loss_instrs <= r.recovery_loss_instrs, "{name}/{entries}");
        }
    }
    let vortex_small = run("vortex", 256, Associativity::Direct);
    let vortex_large = run("vortex", 1024, Associativity::Direct);
    assert!(
        vortex_large.recovery_loss_pct() < vortex_small.recovery_loss_pct() * 0.7,
        "capacity must cut vortex's loss: {} -> {}",
        vortex_small.recovery_loss_pct(),
        vortex_large.recovery_loss_pct()
    );
    let bzip = run("bzip", 1024, Associativity::Ways(2));
    assert!(bzip.recovery_loss_pct() < 1.0, "bzip {}%", bzip.recovery_loss_pct());
}

/// Figure 8 claim: the large majority of decode faults in a repetitive
/// workload are detected through the ITR cache.
#[test]
fn fault_injection_mostly_detected() {
    let profile = profiles::by_name("gap").expect("known");
    let program = generate_mimic_sized(profile, 5, 40_000);
    let cfg = CampaignConfig {
        faults: 30,
        window_cycles: 15_000,
        min_decode: 100,
        max_decode: 30_000,
        seed: 2,
        threads: 2,
        ..CampaignConfig::default()
    };
    let result = run_campaign(&program, &cfg);
    assert_eq!(result.records.len(), 30);
    assert!(
        result.itr_detected_fraction() > 0.6,
        "ITR-detected fraction {:.2}, counts {:?}",
        result.itr_detected_fraction(),
        result.counts
    );
}

/// §5 claims: ITR cache ≈ 1/7 of the I-unit's area; per-access energies
/// match the published CACTI values; total ITR energy beats redundant
/// fetching on a real pipeline run.
#[test]
fn area_and_energy_comparisons() {
    let area = AreaComparison::paper_itr_cache();
    assert!((6.0..9.0).contains(&area.ratio()));
    assert!((energy_per_access_nj(&POWER4_ICACHE) - 0.87).abs() < 0.01);
    assert!((energy_per_access_nj(&ITR_CACHE_1024X2) - 0.58).abs() < 0.01);

    let program = assemble(kernels::CRC32.source).expect("assembles");
    let mut pipe = Pipeline::new(&program, PipelineConfig::with_itr());
    assert_eq!(pipe.run(10_000_000), RunExit::Halted);
    let unit = pipe.itr().expect("on");
    let row = EnergyRow::from_counts(
        "crc32",
        unit.cache().stats().reads + unit.cache().stats().writes,
        pipe.stats().icache_accesses,
    );
    assert!(
        row.itr_single_port_mj < row.icache_refetch_mj,
        "ITR {} mJ vs I-cache {} mJ",
        row.itr_single_port_mj,
        row.icache_refetch_mj
    );
}

/// Synthetic stream model and generated programs agree on the benchmark's
/// qualitative behaviour (cross-validation of the two workload paths).
#[test]
fn stream_model_and_programs_agree() {
    use itr::sim::TraceStream;
    let p = profiles::by_name("twolf").expect("known");
    let instrs = 120_000u64;

    let mut stream_model = CoverageModel::new(ItrCacheConfig::paper_default());
    for t in SyntheticTraceStream::new(p, 7, instrs) {
        stream_model.observe(&t);
    }
    let program = generate_mimic_sized(p, 7, instrs);
    let mut program_model = CoverageModel::new(ItrCacheConfig::paper_default());
    for t in TraceStream::new(&program, instrs) {
        program_model.observe(&t);
    }
    let (a, b) = (stream_model.report(), program_model.report());
    let delta = (a.recovery_loss_pct() - b.recovery_loss_pct()).abs();
    assert!(
        delta < 5.0,
        "stream model {:.2}% vs program {:.2}% recovery loss",
        a.recovery_loss_pct(),
        b.recovery_loss_pct()
    );
}

/// A workload with no repetition at all gets no ITR protection — the
/// boundary condition of the whole idea.
#[test]
fn zero_repetition_means_zero_protection() {
    let mut m = CoverageModel::new(ItrCacheConfig::new(256, Associativity::Ways(2)));
    for i in 0..10_000u64 {
        m.observe(&TraceRecord { start_pc: 0x1000 + i * 64, signature: i, len: 8 });
    }
    let r = m.report();
    assert_eq!(r.recovery_loss_instrs, r.total_instrs, "every trace misses");
}
