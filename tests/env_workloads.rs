//! Characterization of the hostile-environment workload families
//! (compression, parsing, packet processing): deterministic self-check
//! outputs, pinned instruction counts, and a golden Table-1-style
//! repetition row each. These are the workloads the `env-interleave`
//! and `env-workloads` reproduction families schedule, so their dynamic
//! behavior is pinned here, independent of the harness.

#![allow(clippy::unwrap_used)] // test code: panicking on broken expectations is the point

use itr::isa::asm::assemble;
use itr::isa::Program;
use itr::sim::{FuncSim, Pipeline, PipelineConfig, RunExit, StopReason, TraceStream};
use itr::workloads::kernels;
use itr_bench::StreamStats;

/// Golden row per family: (kernel, output, dynamic instrs,
/// static traces, min top-10 dynamic share %, min within-4096 repeat %).
const GOLDEN: [(&str, &str, u64, usize, f64, f64); 3] = [
    ("rle_compress", "183221", 416, 8, 99.0, 85.0),
    ("json_parse", "7513", 381, 18, 80.0, 75.0),
    ("pkt_parse", "50061", 217, 9, 99.0, 80.0),
];

fn assembled(name: &str) -> Program {
    let kernel = kernels::all().into_iter().find(|k| k.name == name).unwrap();
    assemble(kernel.source).unwrap()
}

#[test]
fn outputs_are_deterministic_and_self_checking() {
    for (name, output, _, _, _, _) in GOLDEN {
        let kernel = kernels::all().into_iter().find(|k| k.name == name).unwrap();
        assert_eq!(kernel.expected_output, output, "{name}: golden row drifted from kernel");
        let program = assembled(name);
        for _ in 0..2 {
            let mut sim = FuncSim::new(&program);
            assert_eq!(sim.run(1_000_000), StopReason::Halted, "{name}");
            assert_eq!(sim.output(), output, "{name}: functional output");
        }
    }
}

#[test]
fn pipeline_agrees_and_never_mismatches_fault_free() {
    for (name, output, _, _, _, _) in GOLDEN {
        let program = assembled(name);
        let mut cpu = Pipeline::new(&program, PipelineConfig::with_itr());
        assert_eq!(cpu.run(10_000_000), RunExit::Halted, "{name}");
        assert_eq!(cpu.output(), output, "{name}: pipeline output");
        let itr = cpu.itr().expect("ITR enabled");
        assert_eq!(itr.stats().mismatches, 0, "{name}: fault-free runs never mismatch");
    }
}

#[test]
fn instruction_counts_are_pinned() {
    // The exact dynamic instruction count is a determinism canary: any
    // assembler or simulator change that perturbs these kernels shows up
    // here before it silently re-shapes the env reproduction families.
    for (name, _, instrs, _, _, _) in GOLDEN {
        let mut sim = FuncSim::new(&assembled(name));
        sim.run(1_000_000);
        assert_eq!(sim.instr_count(), instrs, "{name}: dynamic instruction count");
    }
}

#[test]
fn repetition_rows_match_table_1_shape() {
    // Table-1-style characterization: few static traces carry all the
    // dynamic instructions, and repeats recur at short distances — the
    // property ITR's cache hit rate depends on.
    for (name, _, instrs, traces, min_top10, min_within) in GOLDEN {
        let program = assembled(name);
        let stats = StreamStats::collect(TraceStream::new(&program, 1_000_000));
        assert_eq!(stats.total_instrs, instrs, "{name}: trace stream covers every instruction");
        assert_eq!(stats.static_traces(), traces, "{name}: static trace count");
        let top10 = stats.top_n_share_pct(10);
        let within = stats.within_distance_pct(4096);
        assert!(top10 >= min_top10, "{name}: top-10 share {top10:.1}% < {min_top10}%");
        assert!(within >= min_within, "{name}: within-4096 repeats {within:.1}% < {min_within}%");
    }
}
