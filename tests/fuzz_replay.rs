//! Replays every archived fuzz finding in `tests/fuzz_regressions/`.
//!
//! Each document is a shrunken `itr-fuzz-finding/v1` case that once
//! violated one of the differential oracles. A fixed bug must stay
//! fixed: if any archived case reproduces its finding again, this test
//! fails with the oracle's account. `itr-fuzz replay` runs the same
//! check from the command line (and in CI on every push).

#![allow(clippy::unwrap_used)] // test code: panicking on broken expectations is the point

use itr::fuzz::RegressionCase;
use std::path::Path;

#[test]
fn archived_fuzz_regressions_stay_fixed() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fuzz_regressions");
    let mut replayed = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/fuzz_regressions exists")
        .map(|e| e.expect("readable dir entry").path())
        .collect();
    entries.sort();
    for path in entries {
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable case");
        let rc =
            RegressionCase::from_json(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        if let Some(f) = rc.reproduces() {
            panic!(
                "{} reproduces again under oracle `{}`:\n{}\n(archived account: {})",
                path.display(),
                f.kind.label(),
                f.detail,
                rc.detail
            );
        }
        replayed += 1;
    }
    assert!(replayed >= 1, "expected at least one archived regression case");
}
