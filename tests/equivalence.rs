//! Refactor-equivalence guard: the staged pipeline must be
//! semantics-preserving.
//!
//! Two properties over **every** workload in `itr::workloads::suite`:
//!
//! 1. the cycle-level [`Pipeline`] commits the exact instruction stream
//!    (PC, destination writeback, store, next-PC) of the functional
//!    simulator, with and without the ITR unit;
//! 2. the ITR mismatch and coverage counters of a fault-free ITR run are
//!    bit-identical to the golden snapshot in `tests/golden_stats.json`.
//!
//! Regenerate the snapshot (after an *intentional* semantic change) with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test equivalence
//! ```

#![allow(clippy::unwrap_used)] // test code: panicking on broken expectations is the point

use itr::fuzz::first_divergence;
use itr::sim::{FuncSim, Pipeline, PipelineConfig, RunExit};
use itr::stats::json::Value;
use itr::stats::Report;
use itr::workloads::suite::{everything, Workload};

/// Mimic generation parameters — baked into the golden snapshot, so keep
/// in sync with `tests/golden_stats.json` when changing.
const MIMIC_SEED: u64 = 7;
const MIMIC_INSTRS: u64 = 12_000;
/// Cycle budget: generous multiple of the largest workload.
const CYCLE_BUDGET: u64 = 50_000_000;

fn suite() -> Vec<Workload> {
    everything(MIMIC_SEED, MIMIC_INSTRS)
}

/// The staged pipeline's committed stream equals the functional
/// simulator's, record for record, on every suite workload and both
/// pipeline configurations.
#[test]
fn commit_streams_match_funcsim_on_every_workload() {
    for w in suite() {
        let mut func = FuncSim::new(&w.program);
        let (golden, _) = func.run_collect(CYCLE_BUDGET);
        assert!(!golden.is_empty(), "{}: golden run committed nothing", w.name);

        for (label, cfg) in
            [("plain", PipelineConfig::default()), ("itr", PipelineConfig::with_itr())]
        {
            let mut actual = Vec::with_capacity(golden.len() + 8);
            let mut pipe = Pipeline::new(&w.program, cfg);
            let exit = pipe.run_with(CYCLE_BUDGET, |r| {
                actual.push(*r);
                actual.len() <= golden.len()
            });
            // On failure, report the first divergent commit with PC,
            // disassembly and both replayed architectural states —
            // not just two opaque records.
            if let Some(d) = first_divergence(&w.program, &golden, &actual) {
                panic!("{} ({label}): commit stream diverged\n{d}", w.name);
            }
            assert_eq!(exit, RunExit::Halted, "{} ({label})", w.name);
            if let Some(expected) = w.expected_output {
                assert_eq!(pipe.output(), expected, "{} ({label}): output", w.name);
            }
        }
    }
}

/// The counters pinned per workload, read out of the run's
/// `itr-stats/v1` export.
const PINNED: &[(&str, &str)] = &[
    ("itr", "mismatches"),
    ("itr", "traces_dispatched"),
    ("itr", "traces_committed"),
    ("itr", "instrs_committed"),
    ("itr", "recovery_loss_instrs"),
    ("itr", "detection_loss_instrs"),
    ("itr", "retries"),
    ("itr", "machine_checks"),
    ("itr_cache", "reads"),
    ("itr_cache", "writes"),
    ("itr_cache", "hits"),
    ("itr_cache", "misses"),
    ("itr_cache", "evictions"),
    ("itr_cache", "evictions_unreferenced"),
];

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden_stats.json")
}

/// Runs one workload on the ITR pipeline and extracts the pinned
/// counters from its JSON export.
fn measure(w: &Workload) -> Vec<(String, Value)> {
    let mut pipe = Pipeline::new(&w.program, PipelineConfig::with_itr());
    assert_eq!(pipe.run(CYCLE_BUDGET), RunExit::Halted, "{}", w.name);
    let report = Report::from_json(&pipe.stats_json()).expect("valid itr-stats/v1 export");
    PINNED
        .iter()
        .map(|(section, counter)| {
            let value = report
                .counter(section, counter)
                .unwrap_or_else(|| panic!("{}: export lacks {section}.{counter}", w.name));
            (format!("{section}.{counter}"), Value::UInt(value))
        })
        .collect()
}

/// ITR mismatch and coverage counters are bit-identical to the golden
/// snapshot for every suite workload (fault-free runs).
#[test]
fn itr_counters_match_golden_snapshot() {
    let measured: Vec<(String, Value)> =
        suite().iter().map(|w| (w.name.clone(), Value::Object(measure(w)))).collect();
    let doc = Value::Object(vec![
        ("schema".to_string(), Value::Str("itr-golden/v1".to_string())),
        ("mimic_seed".to_string(), Value::UInt(MIMIC_SEED)),
        ("mimic_instrs".to_string(), Value::UInt(MIMIC_INSTRS)),
        ("workloads".to_string(), Value::Object(measured)),
    ]);

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path(), doc.to_json()).expect("write golden snapshot");
        return;
    }

    let text = std::fs::read_to_string(golden_path())
        .expect("tests/golden_stats.json missing; regenerate with UPDATE_GOLDEN=1");
    let golden = Value::parse(&text).expect("golden snapshot parses");
    assert_eq!(
        golden.get("schema").and_then(Value::as_str),
        Some("itr-golden/v1"),
        "unexpected golden schema"
    );
    assert_eq!(golden.get("mimic_seed").and_then(Value::as_u64), Some(MIMIC_SEED));
    assert_eq!(golden.get("mimic_instrs").and_then(Value::as_u64), Some(MIMIC_INSTRS));

    let golden_workloads =
        golden.get("workloads").and_then(Value::as_object).expect("golden has workloads");
    let measured_workloads = doc.get("workloads").and_then(Value::as_object).unwrap();
    let names = |obj: &[(String, Value)]| -> Vec<String> {
        obj.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>()
    };
    assert_eq!(
        names(measured_workloads),
        names(golden_workloads),
        "workload set changed; regenerate with UPDATE_GOLDEN=1"
    );
    for (name, counters) in measured_workloads {
        let want = golden_workloads.iter().find(|(n, _)| n == name).map(|(_, v)| v).unwrap();
        for (key, value) in counters.as_object().unwrap() {
            assert_eq!(
                Some(value),
                want.get(key),
                "{name}: {key} diverged from golden (regenerate with UPDATE_GOLDEN=1 \
                 only for an intentional semantic change)"
            );
        }
    }
}
