//! Tentpole guard for the `itr-tap/v1` record/replay boundary: an
//! [`ItrUnit`] driven by a recorded tap stream must be **byte-identical**
//! (in its `itr-stats/v1` export) to the unit embedded in the pipeline
//! that produced the stream — across a sampled grid of ITR
//! configurations and workloads. This is the invariant that lets the
//! design-space sweeps simulate each workload once and fan the stream
//! out to every configuration.
//!
//! Also pins the tap stream itself for one kernel in
//! `tests/golden_tap.json`, so accidental schema or emission-order
//! changes are caught even when they happen symmetrically on both the
//! record and replay sides. Regenerate (after an *intentional* change
//! to the stream format) with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test replay_equivalence
//! ```

#![allow(clippy::unwrap_used)] // test code: panicking on broken expectations is the point

use itr::core::{Associativity, FoldKind, ItrCacheConfig, ItrConfig, ItrMode, TapReplayer};
use itr::sim::{record_tap, Pipeline, PipelineConfig};
use itr::stats::json::Value;
use itr::stats::Report;
use itr::workloads::suite::{by_name, Workload};

const MIMIC_SEED: u64 = 7;
const MIMIC_INSTRS: u64 = 8_000;
const CYCLE_BUDGET: u64 = 50_000_000;

fn workloads() -> Vec<Workload> {
    ["sum_loop", "crc32", "vortex"]
        .iter()
        .map(|n| by_name(n, MIMIC_SEED, MIMIC_INSTRS).expect("known workload"))
        .collect()
}

/// The sampled configuration grid: modes, geometries, trace lengths,
/// fold kinds and replacement policies. Every config keeps
/// `cache_read_latency` at 0 — the only regime the replayer (which has
/// no cycle clock) supports, and the paper's evaluation point.
fn config_grid() -> Vec<(&'static str, ItrConfig)> {
    let base = ItrConfig::paper_default();
    vec![
        ("paper-default", base),
        (
            "small-direct-len8",
            ItrConfig {
                cache: ItrCacheConfig::new(256, Associativity::Direct),
                max_trace_len: 8,
                ..base
            },
        ),
        ("passive", ItrConfig { mode: ItrMode::Passive, ..base }),
        ("no-forwarding-len32", ItrConfig { rob_forwarding: false, max_trace_len: 32, ..base }),
        (
            "rotate-xor-checked-bit",
            ItrConfig {
                cache: ItrCacheConfig::new(512, Associativity::Ways(4))
                    .with_checked_bit_replacement(true),
                fold: FoldKind::RotateXor,
                ..base
            },
        ),
        (
            "tiny-full-no-parity",
            ItrConfig {
                cache: ItrCacheConfig::new(64, Associativity::Full).with_parity(false),
                ..base
            },
        ),
    ]
}

fn export_json(unit: &itr::core::ItrUnit) -> String {
    let mut report = Report::new();
    unit.export(&mut report);
    report.to_json()
}

/// For every (config, workload) grid point: run the full pipeline with
/// the tap enabled, then replay the recorded stream into a fresh unit
/// and demand a byte-identical stats export.
#[test]
fn replayed_unit_export_is_byte_identical_to_in_pipeline_unit() {
    for w in workloads() {
        for (label, itr_cfg) in config_grid() {
            let cfg = PipelineConfig { itr: Some(itr_cfg), ..PipelineConfig::default() };
            let mut pipe = Pipeline::new(&w.program, cfg);
            pipe.enable_tap(&w.name);
            pipe.run(CYCLE_BUDGET);
            let direct = export_json(pipe.itr().expect("ITR enabled"));
            let tap = pipe.take_tap().expect("tap enabled");

            let mut replayer = TapReplayer::new(itr_cfg);
            replayer.replay(&tap);
            let replayed = export_json(replayer.unit());

            assert_eq!(
                direct, replayed,
                "{} ({label}): replayed export diverged from in-pipeline export",
                w.name
            );
        }
    }
}

/// Rename protection folds map-table indexes into the `extra` word of
/// every dispatch; the tap carries it, so replay must still match.
#[test]
fn replay_matches_with_rename_protection() {
    let w = by_name("crc32", MIMIC_SEED, MIMIC_INSTRS).unwrap();
    let itr_cfg = ItrConfig::paper_default();
    let cfg =
        PipelineConfig { itr: Some(itr_cfg), rename_protection: true, ..PipelineConfig::default() };
    let mut pipe = Pipeline::new(&w.program, cfg);
    pipe.enable_tap(&w.name);
    pipe.run(CYCLE_BUDGET);
    let direct = export_json(pipe.itr().unwrap());
    let tap = pipe.take_tap().unwrap();

    let mut replayer = TapReplayer::new(itr_cfg);
    replayer.replay(&tap);
    assert_eq!(direct, export_json(replayer.unit()));
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden_tap.json")
}

/// The `itr-tap/v1` stream for one kernel, pinned byte-for-byte.
#[test]
fn tap_stream_matches_golden_snapshot() {
    let w = by_name("sum_loop", MIMIC_SEED, MIMIC_INSTRS).unwrap();
    let tap = record_tap(&w.program, &w.name, 100_000);
    let text = tap.to_json().to_json();

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path(), &text).expect("write golden tap");
        return;
    }

    let golden = std::fs::read_to_string(golden_path())
        .expect("tests/golden_tap.json missing; regenerate with UPDATE_GOLDEN=1");
    assert_eq!(
        text, golden,
        "itr-tap/v1 stream for sum_loop diverged from tests/golden_tap.json \
         (regenerate with UPDATE_GOLDEN=1 only for an intentional format change)"
    );

    // The pinned stream must round-trip through the JSON codec.
    let parsed = Value::parse(&golden).expect("golden tap parses");
    let stream = itr::core::TapStream::from_json(&parsed).expect("golden tap decodes");
    assert_eq!(stream.to_json().to_json(), golden);
}
