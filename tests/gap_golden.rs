//! Golden baseline for the static↔dynamic coverage-gap engine.
//!
//! Pins the `itr-gap-golden/v1` self-observed gap reports of three
//! representative workloads (`sum_loop` and `crc32` kernels, the
//! `vortex` mimic) at trace lengths 4/8/16 against
//! `tests/golden_gap.json`, byte for byte. Regenerate after an
//! intentional change with:
//!
//! ```text
//! itr-analyze --workload sum_loop --workload crc32 --workload vortex \
//!             --write-gap tests/golden_gap.json
//! ```

#![allow(clippy::unwrap_used)] // test code: panicking on broken expectations is the point

use itr::analyze::{golden_document, GapObservations, GAP_GOLDEN_BUDGET, GAP_GOLDEN_SCHEMA};
use itr::stats::json::Value;
use itr::workloads::suite;

/// Suite parameters pinned to the `itr-analyze` binary defaults, which
/// is what the golden document was generated with.
const SEED: u64 = 0x1712_2007;
const MIMIC_INSTRS: u64 = 30_000;

/// The three pinned workloads, in document order.
const WORKLOADS: [&str; 3] = ["sum_loop", "crc32", "vortex"];

/// Trace-length limits the document was generated with (the
/// `AnalyzeConfig` / `--trace-lens` default).
const LENS: [u32; 3] = [4, 8, 16];

fn build_document() -> Value {
    let workloads: Vec<_> = WORKLOADS
        .iter()
        .map(|name| suite::by_name(name, SEED, MIMIC_INSTRS).expect("pinned workload exists"))
        .collect();
    let programs: Vec<(&str, &itr::isa::Program)> =
        workloads.iter().map(|w| (w.name.as_str(), &w.program)).collect();
    golden_document(&programs, GAP_GOLDEN_BUDGET, &LENS)
}

#[test]
fn gap_reports_match_golden_document_byte_for_byte() {
    let golden = include_str!("golden_gap.json");
    let built = build_document().to_json();
    assert_eq!(
        built, golden,
        "gap reports drifted from tests/golden_gap.json — if the change is \
         intentional, regenerate with `itr-analyze --workload sum_loop \
         --workload crc32 --workload vortex --write-gap tests/golden_gap.json`"
    );
}

#[test]
fn golden_document_has_the_pinned_shape() {
    let doc = Value::parse(include_str!("golden_gap.json")).unwrap();
    assert_eq!(doc.get("schema").and_then(Value::as_str), Some(GAP_GOLDEN_SCHEMA));
    assert_eq!(doc.get("budget").and_then(Value::as_u64), Some(GAP_GOLDEN_BUDGET));
    let lens: Vec<u64> = doc
        .get("lens")
        .and_then(Value::as_array)
        .unwrap()
        .iter()
        .filter_map(Value::as_u64)
        .collect();
    assert_eq!(lens, [4, 8, 16]);
    let reports = doc.get("reports").and_then(Value::as_array).unwrap();
    assert_eq!(reports.len(), WORKLOADS.len());
    for (report, name) in reports.iter().zip(WORKLOADS) {
        assert_eq!(report.get("name").and_then(Value::as_str), Some(name));
        let edges = report.get("edges").unwrap();
        let covered = edges.get("covered").and_then(Value::as_u64).unwrap();
        let static_edges = edges.get("static").and_then(Value::as_u64).unwrap();
        assert!(static_edges > 0, "{name}: no reachable CFG edges");
        assert!(covered <= static_edges, "{name}: covered edges exceed static edges");
        // Every report carries one length section per configured length.
        let lens = report.get("lens").and_then(Value::as_array).unwrap();
        assert_eq!(lens.len(), LENS.len(), "{name}: length sections");
    }
}

#[test]
fn self_observation_fully_covers_the_pinned_kernels() {
    // Straight-line-plus-loop kernels exercise their whole CFG within
    // the golden budget, so their reports must be fully closed; that is
    // what makes the baseline a meaningful regression anchor (any gap
    // appearing on a kernel is a tracker or enumerator bug, not a
    // coverage shortfall).
    for name in ["sum_loop", "crc32"] {
        let w = suite::by_name(name, SEED, MIMIC_INSTRS).unwrap();
        let obs = GapObservations::from_program(&w.program, GAP_GOLDEN_BUDGET, &LENS);
        let report = itr::analyze::gap_report(name, &w.program, &LENS, &obs);
        assert!(
            report.is_closed(),
            "{name}: expected a fully-closed gap report, got {} open gaps",
            report.open_gaps()
        );
    }
}
