//! Cross-crate integration tests: the full kernel suite and mimic
//! workloads through both simulators, with and without ITR protection.

#![allow(clippy::unwrap_used)] // test code: panicking on broken expectations is the point

use itr::isa::asm::assemble;
use itr::sim::{FuncSim, Pipeline, PipelineConfig, RunExit, StopReason};
use itr::workloads::{generate_mimic_sized, kernels, profiles};

/// Every kernel produces its expected output on the cycle-level pipeline,
/// with and without the ITR unit, matching the functional simulator.
#[test]
fn kernels_run_identically_on_all_simulators() {
    for kernel in kernels::all() {
        let program = assemble(kernel.source).expect("kernel assembles");

        let mut func = FuncSim::new(&program);
        assert_eq!(func.run(20_000_000), StopReason::Halted, "{}", kernel.name);
        assert_eq!(func.output(), kernel.expected_output, "{} functional", kernel.name);

        for (label, cfg) in
            [("plain", PipelineConfig::default()), ("itr", PipelineConfig::with_itr())]
        {
            let mut pipe = Pipeline::new(&program, cfg);
            let exit = pipe.run(50_000_000);
            assert_eq!(exit, RunExit::Halted, "{} on {label} pipeline", kernel.name);
            assert_eq!(
                pipe.output(),
                kernel.expected_output,
                "{} output on {label} pipeline",
                kernel.name
            );
        }
    }
}

/// The pipeline's committed stream equals the functional simulator's,
/// instruction for instruction, on every kernel (with ITR enabled).
#[test]
fn commit_streams_are_bit_identical() {
    for kernel in kernels::all() {
        let program = assemble(kernel.source).expect("assembles");
        let mut func = FuncSim::new(&program);
        let (golden, _) = func.run_collect(20_000_000);

        let mut i = 0usize;
        let mut pipe = Pipeline::new(&program, PipelineConfig::with_itr());
        let exit = pipe.run_with(50_000_000, |r| {
            assert!(i < golden.len(), "{}: pipeline committed too much", kernel.name);
            assert_eq!(*r, golden[i], "{}: commit {i} diverged", kernel.name);
            i += 1;
            true
        });
        assert_eq!(exit, RunExit::Halted);
        assert_eq!(i, golden.len(), "{}: committed count", kernel.name);
    }
}

/// Fault-free ITR runs never mismatch and lose no detection coverage on
/// kernels (their static footprints fit any evaluated cache).
#[test]
fn kernels_have_zero_itr_loss() {
    for kernel in kernels::all() {
        let program = assemble(kernel.source).expect("assembles");
        let mut pipe = Pipeline::new(&program, PipelineConfig::with_itr());
        assert_eq!(pipe.run(50_000_000), RunExit::Halted);
        let s = pipe.itr().expect("itr on").stats();
        assert_eq!(s.mismatches, 0, "{}", kernel.name);
        assert_eq!(s.machine_checks, 0, "{}", kernel.name);
        assert_eq!(s.detection_loss_instrs, 0, "{}", kernel.name);
    }
}

/// Generated mimic programs run to completion on the ITR pipeline and the
/// commit interlock never wedges (every dispatched trace resolves).
#[test]
fn mimic_programs_run_on_the_itr_pipeline() {
    for name in ["bzip", "perl", "swim"] {
        let profile = profiles::by_name(name).expect("known");
        let program = generate_mimic_sized(profile, 3, 30_000);
        let mut pipe = Pipeline::new(&program, PipelineConfig::with_itr());
        let exit = pipe.run(5_000_000);
        assert_eq!(exit, RunExit::Halted, "{name}");
        let s = pipe.itr().expect("itr on").stats();
        assert_eq!(s.mismatches, 0, "{name}: fault-free run");
        assert!(s.traces_committed > 1_000, "{name}: traces flowed");
    }
}

/// The documented recovery path end to end: a transient decode fault on a
/// cached trace is detected at commit, retried, and the program completes
/// with the correct result. The identical run without ITR corrupts.
#[test]
fn transient_faults_recover_with_itr_and_corrupt_without() {
    use itr::sim::DecodeFault;
    let program = assemble(kernels::FIB.source).expect("assembles");
    // fib's loop body: inject into an iteration after the first (trace
    // cached by then). Bit 35 = rdst field: the result goes to the wrong
    // register.
    let fault = DecodeFault { nth_decode: 40, bit: 35 };

    let cfg = PipelineConfig { faults: vec![fault], ..PipelineConfig::default() };
    let mut plain = Pipeline::new(&program, cfg);
    plain.run(5_000_000);
    assert_ne!(plain.output(), kernels::FIB.expected_output, "unprotected SDC");

    let cfg = PipelineConfig { faults: vec![fault], ..PipelineConfig::with_itr() };
    let mut protected = Pipeline::new(&program, cfg);
    let exit = protected.run(5_000_000);
    assert_eq!(exit, RunExit::Halted);
    assert_eq!(protected.output(), kernels::FIB.expected_output);
    let s = protected.itr().expect("itr on").stats();
    assert_eq!(s.recoveries, 1);
    assert_eq!(s.machine_checks, 0);
}

/// §2.4: a fault striking the ITR cache itself is convicted by parity and
/// repaired without a (false) machine check.
#[test]
fn itr_cache_fault_is_repaired_by_parity() {
    let program = assemble(kernels::SUM_LOOP.source).expect("assembles");
    let mut pipe = Pipeline::new(&program, PipelineConfig::with_itr());
    // Warm the cache, then corrupt the stored signature of the hot loop
    // trace (it starts at main+8 = first instruction after `li r9, 0`...
    // locate it by probing resident lines instead).
    pipe.run(200);
    let victim = {
        let unit = pipe.itr().expect("on");
        unit.cache().iter_lines().next().expect("cache warmed").0
    };
    assert!(pipe.itr_mut().expect("on").cache_mut().corrupt_signature(victim, 9));
    let exit = pipe.run(5_000_000);
    assert_eq!(exit, RunExit::Halted);
    assert_eq!(pipe.output(), kernels::SUM_LOOP.expected_output);
    let s = pipe.itr().expect("on").stats();
    assert_eq!(s.machine_checks, 0, "parity must prevent the false machine check");
}

/// The façade's re-exports compose: a program assembled through
/// `itr::isa` runs through `itr::sim` and its traces feed
/// `itr::core::CoverageModel`.
#[test]
fn facade_reexports_compose() {
    use itr::core::{CoverageModel, ItrCacheConfig};
    use itr::sim::TraceStream;
    let program = assemble(kernels::SIEVE.source).expect("assembles");
    let mut model = CoverageModel::new(ItrCacheConfig::paper_default());
    let mut n = 0u64;
    for t in TraceStream::new(&program, 1_000_000) {
        model.observe(&t);
        n += 1;
    }
    assert!(n > 100);
    assert_eq!(model.report().mismatches, 0);
}
