//! End-to-end tests of the `itr-harness` reproduction pipeline: a tiny
//! quick run journals every shard, resumes with zero recomputation, and
//! produces artifacts byte-identical to the standalone binaries' shared
//! render path.

#![allow(clippy::unwrap_used)] // test code: panicking on broken expectations is the point

use itr_bench::experiments::{register_all, Scale};
use itr_harness::{fingerprint, run, Registry, RunOptions};
use std::path::{Path, PathBuf};

/// A budget small enough that the whole 135-shard DAG runs in seconds.
fn tiny_scale() -> Scale {
    Scale {
        faults: 10,
        window_cycles: 10_000,
        instrs: 60_000,
        program_instrs: 20_000,
        ..Scale::quick()
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("itr-repro-test-{}-{name}", std::process::id()));
    let _ignored = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn registry(scale: &Scale, out: &Path) -> Registry {
    let mut reg = Registry::new(fingerprint(&scale.canonical()));
    register_all(&mut reg, scale, out);
    reg
}

#[test]
fn quick_run_journals_and_resumes_without_recomputation() {
    let scale = tiny_scale();
    let out = tmp_dir("resume");
    let opts = RunOptions {
        threads: 4,
        journal_path: Some(out.join("journal.jsonl")),
        ..RunOptions::default()
    };
    let first = run(registry(&scale, &out), &opts).expect("first run");
    assert_eq!(first.quarantined, 0, "{:?}", first.quarantines);
    assert_eq!(first.executed, first.total_shards);
    assert!(out.join("journal.jsonl").exists());
    for artifact in [
        "table1.txt",
        "fig8.txt",
        "fig8_injection.csv",
        "ablations.csv",
        "sweep.txt",
        "sweep_pareto.csv",
        "env.txt",
        "env.csv",
        "BENCH_repro.json",
    ] {
        assert!(out.join(artifact).exists(), "missing {artifact}");
    }
    let fig8_first = std::fs::read_to_string(out.join("fig8.txt")).expect("fig8.txt");

    let resumed = run(registry(&scale, &out), &RunOptions { resume: true, threads: 1, ..opts })
        .expect("resumed run");
    assert_eq!(resumed.executed, 0, "every shard replayed from the journal");
    assert_eq!(resumed.journaled, first.total_shards);
    let fig8_resumed = std::fs::read_to_string(out.join("fig8.txt")).expect("fig8.txt");
    assert_eq!(fig8_first, fig8_resumed, "replayed emit is byte-identical");
}

#[test]
fn harness_artifacts_match_the_standalone_render_path() {
    use itr_bench::experiments::injection::{fig8_cfg, render_fig8, tally, Fig8Unit};
    use itr_faults::run_campaign;
    use itr_workloads::{generate_mimic_sized, profiles};

    let scale = tiny_scale();
    let out = tmp_dir("parity");
    let summary = run(registry(&scale, &out), &RunOptions { threads: 8, ..RunOptions::default() })
        .expect("run");
    assert_eq!(summary.quarantined, 0, "{:?}", summary.quarantines);

    // Recompute Figure 8 the way the standalone binary does — serial
    // campaigns per benchmark through the same render function — and
    // compare the artifact text up to the CSV path line (the harness
    // writes into `out`, the binary into `results/`).
    let units: Vec<Fig8Unit> = profiles::coverage_figure_set()
        .into_iter()
        .map(|profile| {
            let program = generate_mimic_sized(profile, scale.seed, scale.program_instrs);
            let cfg = fig8_cfg(scale.seed, scale.faults, scale.window_cycles, scale.program_instrs);
            let result = run_campaign(&program, &cfg);
            Fig8Unit { name: profile.name.to_string(), counts: tally(&result.records) }
        })
        .collect();
    let expected = render_fig8(&units, scale.faults, scale.window_cycles);
    let artifact = std::fs::read_to_string(out.join("fig8.txt")).expect("fig8.txt");
    assert!(
        artifact.starts_with(&expected.text),
        "harness artifact diverges from the standalone render:\n{artifact}"
    );
    let csv = std::fs::read_to_string(out.join("fig8_injection.csv")).expect("csv");
    let expected_csv = expected.csv.expect("fig8 writes a CSV");
    let mut body = expected_csv.header.clone();
    body.push('\n');
    for row in &expected_csv.rows {
        body.push_str(row);
        body.push('\n');
    }
    assert_eq!(csv, body, "CSV artifact is byte-identical");
}

#[test]
fn scale_change_is_a_fingerprint_change() {
    let scale = tiny_scale();
    let out = tmp_dir("fingerprint");
    let opts = RunOptions {
        threads: 4,
        journal_path: Some(out.join("journal.jsonl")),
        ..RunOptions::default()
    };
    run(registry(&scale, &out), &opts).expect("first run");

    let bigger = Scale { faults: 20, ..scale };
    let err = run(registry(&bigger, &out), &RunOptions { resume: true, ..opts })
        .expect_err("journal from another scale must not resume");
    assert!(err.contains("fingerprint"), "{err}");
}
