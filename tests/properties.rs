//! Property-based tests over the core data structures and invariants.

use itr::core::{
    Associativity, CoverageModel, ItrCache, ItrCacheConfig, ProbeResult, SignatureGen,
    TraceBuilder, TraceRecord,
};
use itr::isa::{decode, encode, DecodeSignals, Instruction, Opcode};
use proptest::prelude::*;

fn arb_opcode() -> impl Strategy<Value = Opcode> {
    (0..Opcode::ALL.len()).prop_map(|i| Opcode::ALL[i])
}

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    (arb_opcode(), 0u8..32, 0u8..32, 0u8..32, 0u8..32, -32768i32..32768).prop_map(
        |(op, rs, rt, rd, shamt, imm)| {
            let imm = match op.props().format {
                itr::isa::Format::J => imm.unsigned_abs() as i32 & 0x03FF_FFFF,
                _ => imm,
            };
            Instruction { op, rs, rt, rd, shamt, imm }
        },
    )
}

proptest! {
    /// Binary encoding round-trips for arbitrary well-formed instructions.
    #[test]
    fn encode_decode_round_trip(inst in arb_instruction()) {
        let word = encode(&inst);
        let back = decode(word).expect("own encodings decode");
        // Dead fields are not encoded, so compare re-encodings.
        prop_assert_eq!(encode(&back), word);
        prop_assert_eq!(back.op, inst.op);
    }

    /// Signal pack/unpack is the identity for every instruction.
    #[test]
    fn signals_pack_round_trip(inst in arb_instruction()) {
        let sig = DecodeSignals::from_instruction(&inst);
        prop_assert_eq!(DecodeSignals::unpack(sig.pack()), sig);
    }

    /// The paper's key detection property: any single bit flip in any
    /// instruction of a trace changes the trace signature.
    #[test]
    fn single_event_upset_always_flips_the_signature(
        insts in prop::collection::vec(arb_instruction(), 1..16),
        victim_index in any::<prop::sample::Index>(),
        bit in 0u32..64,
    ) {
        let victim = victim_index.index(insts.len());
        let mut clean = SignatureGen::new();
        let mut faulty = SignatureGen::new();
        for (i, inst) in insts.iter().enumerate() {
            let sig = DecodeSignals::from_instruction(inst);
            clean.fold(&sig);
            if i == victim {
                faulty.fold(&sig.with_bit_flipped(bit));
            } else {
                faulty.fold(&sig);
            }
        }
        prop_assert_ne!(clean.value(), faulty.value());
    }

    /// Trace formation is deterministic and length-bounded.
    #[test]
    fn traces_respect_the_length_limit(
        insts in prop::collection::vec(arb_instruction(), 1..200),
        max_len in 1u32..32,
    ) {
        let mut tb = TraceBuilder::new(max_len);
        for (i, inst) in insts.iter().enumerate() {
            let sig = DecodeSignals::from_instruction(inst);
            if let Some(t) = tb.push(0x1000 + i as u64 * 4, &sig) {
                prop_assert!(t.len >= 1 && t.len <= max_len);
            }
            prop_assert!(tb.pending_len() < max_len);
        }
    }

    /// ITR cache invariants against a naive reference: a probe hit always
    /// returns the most recently inserted signature for that PC, and
    /// occupancy never exceeds capacity.
    #[test]
    fn itr_cache_agrees_with_reference_model(
        ops in prop::collection::vec((0u64..64, any::<u64>(), any::<bool>()), 1..300),
        entries_pow in 2u32..7,
        ways_pow in 0u32..3,
    ) {
        let entries = 1u32 << entries_pow;
        let ways = 1u32 << ways_pow.min(entries_pow);
        let mut cache = ItrCache::new(ItrCacheConfig::new(entries, Associativity::Ways(ways)));
        let mut reference: std::collections::HashMap<u64, u64> = Default::default();
        for (slot, sig, is_insert) in ops {
            let pc = 0x4000 + slot * 4;
            if is_insert {
                if let Some(ev) = cache.insert(pc, sig, 4) {
                    reference.remove(&ev.start_pc);
                }
                reference.insert(pc, sig);
            } else if let ProbeResult::Hit { signature, .. } = cache.probe(pc) {
                // A hit must return exactly what was last inserted.
                prop_assert_eq!(Some(&signature), reference.get(&pc));
            }
            prop_assert!(cache.occupancy() <= entries as usize);
        }
    }

    /// Coverage invariant (§2.3): detection-coverage loss can never
    /// exceed recovery-coverage loss, for any stream and geometry.
    #[test]
    fn detection_loss_never_exceeds_recovery_loss(
        stream in prop::collection::vec((0u64..256, 1u32..17), 1..500),
        entries_pow in 2u32..7,
        assoc_sel in 0usize..6,
    ) {
        let entries = 1u32 << entries_pow;
        let assoc = match Associativity::SWEEP[assoc_sel] {
            Associativity::Ways(w) if w > entries => Associativity::Full,
            a => a,
        };
        let mut model = CoverageModel::new(ItrCacheConfig::new(entries, assoc));
        for (slot, len) in stream {
            let pc = 0x400 + slot * 28;
            model.observe(&TraceRecord { start_pc: pc, signature: pc * 3, len });
        }
        let r = model.report();
        prop_assert!(r.detection_loss_instrs <= r.recovery_loss_instrs);
        prop_assert!(r.recovery_loss_instrs <= r.total_instrs);
        prop_assert_eq!(r.mismatches, 0, "consistent signatures never mismatch");
    }

    /// One-hot control-state encoding (§2.4) rejects every multi-bit
    /// pattern and round-trips every valid state.
    #[test]
    fn one_hot_control_states(bits in any::<u8>()) {
        use itr::core::ControlState;
        match ControlState::from_one_hot(bits) {
            Some(state) => prop_assert_eq!(state.one_hot(), bits),
            None => prop_assert!(bits.count_ones() != 1 || bits > 0b1000),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random straight-line programs (ALU + memory ops within a scratch
    /// buffer, no branches) behave identically on the functional simulator
    /// and the out-of-order pipeline.
    #[test]
    fn random_linear_programs_match_functional_execution(
        seed_ops in prop::collection::vec((0u8..5, 8u8..16, 8u8..16, 8u8..16, -100i32..100), 5..60),
    ) {
        use itr::isa::ProgramBuilder;
        use itr::sim::{FuncSim, Pipeline, PipelineConfig, RunExit};

        let mut b = ProgramBuilder::new();
        b.label("main").expect("fresh");
        b.data_label("buf").expect("fresh");
        b.data_space(1024);
        b.load_addr(20, "buf");
        for (kind, rd, rs, rt, imm) in seed_ops {
            let inst = match kind {
                0 => Instruction::rri(Opcode::Addi, rd, rs, imm),
                1 => Instruction::rrr(Opcode::Xor, rd, rs, rt),
                2 => Instruction::rrr(Opcode::Mul, rd, rs, rt),
                3 => Instruction::mem(Opcode::Sw, rs, 20, (imm.rem_euclid(256)) * 4),
                _ => Instruction::mem(Opcode::Lw, rd, 20, (imm.rem_euclid(256)) * 4),
            };
            b.push(inst);
        }
        b.push(Instruction::trap(itr::isa::trap::HALT));
        let program = b.build().expect("consistent");

        let mut func = FuncSim::new(&program);
        let (golden, _) = func.run_collect(10_000);

        let mut i = 0usize;
        let mut pipe = Pipeline::new(&program, PipelineConfig::with_itr());
        let exit = pipe.run_with(100_000, |r| {
            assert_eq!(*r, golden[i], "commit {i}");
            i += 1;
            true
        });
        prop_assert_eq!(exit, RunExit::Halted);
        prop_assert_eq!(i, golden.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random *branchy* programs — a bounded outer loop around blocks of
    /// ALU/memory work with forward conditional skips — behave identically
    /// on the functional simulator and the out-of-order pipeline. This
    /// stresses misprediction repair, trace-formation rollback, and the
    /// ITR commit interlock together.
    #[test]
    fn random_branchy_programs_match_functional_execution(
        blocks in prop::collection::vec(
            (prop::collection::vec((0u8..5, 8u8..16, 8u8..16, -50i32..50), 1..6), any::<bool>()),
            1..8,
        ),
        loop_count in 2u32..12,
    ) {
        use itr::isa::ProgramBuilder;
        use itr::sim::{FuncSim, Pipeline, PipelineConfig, RunExit};

        let mut b = ProgramBuilder::new();
        b.label("main").expect("fresh");
        b.data_label("scratch").expect("fresh");
        b.data_space(512);
        b.load_addr(20, "scratch");
        b.load_imm(21, loop_count as i64);
        b.label("loop_top").expect("fresh");
        for (bi, (ops, skip)) in blocks.iter().enumerate() {
            if *skip {
                // Data-dependent forward skip: taken iff the low bit of
                // r9 is set (r9 evolves with the block mix).
                b.push(Instruction::rri(Opcode::Andi, 8, 9, 1));
                b.branch_to(Opcode::Bgtz, 8, 0, &format!("after_{bi}"));
            }
            for &(kind, rd, rs, imm) in ops {
                let inst = match kind {
                    0 => Instruction::rri(Opcode::Addi, rd, rs, imm),
                    1 => Instruction::rrr(Opcode::Xor, rd, rs, 9),
                    2 => Instruction::rrr(Opcode::Add, 9, rd, rs),
                    3 => Instruction::mem(Opcode::Sw, rs, 20, (imm.rem_euclid(128)) * 4),
                    _ => Instruction::mem(Opcode::Lw, rd, 20, (imm.rem_euclid(128)) * 4),
                };
                b.push(inst);
            }
            if *skip {
                b.label(&format!("after_{bi}")).expect("unique");
            }
        }
        b.push(Instruction::rri(Opcode::Addi, 21, 21, -1));
        b.branch_to(Opcode::Bgtz, 21, 0, "loop_top");
        b.push(Instruction::trap(itr::isa::trap::HALT));
        let program = b.build().expect("consistent");

        let mut func = FuncSim::new(&program);
        let (golden, _) = func.run_collect(100_000);

        let mut i = 0usize;
        let mut pipe = Pipeline::new(&program, PipelineConfig::with_itr());
        let exit = pipe.run_with(2_000_000, |r| {
            assert_eq!(*r, golden[i], "commit {i} diverged");
            i += 1;
            true
        });
        prop_assert_eq!(exit, RunExit::Halted);
        prop_assert_eq!(i, golden.len());
        prop_assert_eq!(pipe.itr().unwrap().stats().mismatches, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Architectural correctness is invariant across the microarchitecture
    /// configuration space: widths, window sizes, cache geometries,
    /// predictor sizes and ITR options change timing only.
    #[test]
    fn pipeline_configs_never_change_architecture(
        width_pow in 0u32..3,          // 1, 2, 4 wide
        rob_pow in 4u32..8,            // 16..128 entries
        iq in 8u32..48,
        gshare_bits in 4u32..14,
        icache_kb in 1u32..5,          // 2^k KiB
        itr_entries_pow in 3u32..11,   // 8..1024 signatures
        read_latency in 0u32..6,
        forwarding in any::<bool>(),
    ) {
        use itr::core::{Associativity, ItrCacheConfig, ItrConfig};
        use itr::isa::asm::assemble;
        use itr::sim::{CacheGeometry, Pipeline, PipelineConfig, RunExit};
        use itr::workloads::kernels;

        let kernel = kernels::CRC32;
        let program = assemble(kernel.source).expect("assembles");
        let width = 1u32 << width_pow;
        let cfg = PipelineConfig {
            width,
            issue_width: width,
            rob_entries: 1 << rob_pow,
            iq_entries: iq,
            gshare_bits,
            icache: CacheGeometry {
                size_bytes: (1 << icache_kb) * 1024,
                line_bytes: 64,
                ways: 1,
            },
            itr: Some(ItrConfig {
                cache: ItrCacheConfig::new(1 << itr_entries_pow, Associativity::Ways(2)),
                rob_forwarding: forwarding,
                cache_read_latency: read_latency,
                ..ItrConfig::paper_default()
            }),
            ..PipelineConfig::default()
        };
        let mut pipe = Pipeline::new(&program, cfg);
        let exit = pipe.run(50_000_000);
        prop_assert_eq!(exit, RunExit::Halted);
        prop_assert_eq!(pipe.output(), kernel.expected_output);
        prop_assert_eq!(pipe.itr().unwrap().stats().mismatches, 0);
    }
}
