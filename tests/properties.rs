//! Randomized property tests over the core data structures and invariants.
//!
//! Inputs are drawn from the workspace's own deterministic
//! [`SplitMix64`] generator (fixed seeds, fixed case counts), so every
//! run exercises the same cases — failures reproduce exactly, offline,
//! with no external property-testing framework.

#![allow(clippy::unwrap_used)] // test code: panicking on broken expectations is the point

use itr::core::{
    Associativity, CoverageModel, ItrCache, ItrCacheConfig, ProbeResult, SignatureGen,
    TraceBuilder, TraceRecord,
};
use itr::isa::{decode, encode, DecodeSignals, Instruction, Opcode};
use itr::stats::SplitMix64;

fn arb_instruction(rng: &mut SplitMix64) -> Instruction {
    let op = Opcode::ALL[rng.gen_range(0..Opcode::ALL.len())];
    let imm = rng.gen_range(-32768i32..32768);
    let imm = match op.props().format {
        itr::isa::Format::J => imm.unsigned_abs() as i32 & 0x03FF_FFFF,
        _ => imm,
    };
    Instruction {
        op,
        rs: rng.gen_range(0u8..32),
        rt: rng.gen_range(0u8..32),
        rd: rng.gen_range(0u8..32),
        shamt: rng.gen_range(0u8..32),
        imm,
    }
}

/// Binary encoding round-trips for arbitrary well-formed instructions.
#[test]
fn encode_decode_round_trip() {
    let mut rng = SplitMix64::new(0xE4C0_DE01);
    for _ in 0..2_000 {
        let inst = arb_instruction(&mut rng);
        let word = encode(&inst);
        let back = decode(word).expect("own encodings decode");
        // Dead fields are not encoded, so compare re-encodings.
        assert_eq!(encode(&back), word);
        assert_eq!(back.op, inst.op);
    }
}

/// Signal pack/unpack is the identity for every instruction.
#[test]
fn signals_pack_round_trip() {
    let mut rng = SplitMix64::new(0x51C_4A15);
    for _ in 0..2_000 {
        let inst = arb_instruction(&mut rng);
        let sig = DecodeSignals::from_instruction(&inst);
        assert_eq!(DecodeSignals::unpack(sig.pack()), sig);
    }
}

/// The paper's key detection property: any single bit flip in any
/// instruction of a trace changes the trace signature.
#[test]
fn single_event_upset_always_flips_the_signature() {
    let mut rng = SplitMix64::new(0x5E0_0F11);
    for _ in 0..1_000 {
        let insts: Vec<Instruction> =
            (0..rng.gen_range(1usize..16)).map(|_| arb_instruction(&mut rng)).collect();
        let victim = rng.gen_range(0..insts.len());
        let bit = rng.gen_range(0u32..64);
        let mut clean = SignatureGen::new();
        let mut faulty = SignatureGen::new();
        for (i, inst) in insts.iter().enumerate() {
            let sig = DecodeSignals::from_instruction(inst);
            clean.fold(&sig);
            if i == victim {
                faulty.fold(&sig.with_bit_flipped(bit));
            } else {
                faulty.fold(&sig);
            }
        }
        assert_ne!(clean.value(), faulty.value(), "bit {bit} of inst {victim} undetected");
    }
}

/// Trace formation is deterministic and length-bounded.
#[test]
fn traces_respect_the_length_limit() {
    let mut rng = SplitMix64::new(0x7_1ACE);
    for _ in 0..500 {
        let max_len = rng.gen_range(1u32..32);
        let count = rng.gen_range(1usize..200);
        let mut tb = TraceBuilder::new(max_len);
        for i in 0..count {
            let inst = arb_instruction(&mut rng);
            let sig = DecodeSignals::from_instruction(&inst);
            if let Some(t) = tb.push(0x1000 + i as u64 * 4, &sig) {
                assert!(t.len >= 1 && t.len <= max_len);
            }
            assert!(tb.pending_len() < max_len);
        }
    }
}

/// ITR cache invariants against a naive reference: a probe hit always
/// returns the most recently inserted signature for that PC, and
/// occupancy never exceeds capacity.
#[test]
fn itr_cache_agrees_with_reference_model() {
    let mut rng = SplitMix64::new(0xCAC_4E05);
    for _ in 0..400 {
        let entries = 1u32 << rng.gen_range(2u32..7);
        let ways_pow: u32 = rng.gen_range(0u32..3);
        let ways = 1u32 << ways_pow.min(entries.trailing_zeros());
        let mut cache = ItrCache::new(ItrCacheConfig::new(entries, Associativity::Ways(ways)));
        let mut reference: std::collections::HashMap<u64, u64> = Default::default();
        for _ in 0..rng.gen_range(1usize..300) {
            let slot = rng.gen_range(0u64..64);
            let sig = rng.next_u64();
            let pc = 0x4000 + slot * 4;
            if rng.gen_bool(0.5) {
                if let Some(ev) = cache.insert(pc, sig, 4) {
                    reference.remove(&ev.start_pc);
                }
                reference.insert(pc, sig);
            } else if let ProbeResult::Hit { signature, .. } = cache.probe(pc) {
                // A hit must return exactly what was last inserted.
                assert_eq!(Some(&signature), reference.get(&pc));
            }
            assert!(cache.occupancy() <= entries as usize);
        }
    }
}

/// Coverage invariant (§2.3): detection-coverage loss can never exceed
/// recovery-coverage loss, for any stream and geometry.
#[test]
fn detection_loss_never_exceeds_recovery_loss() {
    let mut rng = SplitMix64::new(0xC0_BE4A6E);
    for _ in 0..300 {
        let entries = 1u32 << rng.gen_range(2u32..7);
        let assoc = match Associativity::SWEEP[rng.gen_range(0usize..Associativity::SWEEP.len())] {
            Associativity::Ways(w) if w > entries => Associativity::Full,
            a => a,
        };
        let mut model = CoverageModel::new(ItrCacheConfig::new(entries, assoc));
        for _ in 0..rng.gen_range(1usize..500) {
            let slot = rng.gen_range(0u64..256);
            let len = rng.gen_range(1u32..17);
            let pc = 0x400 + slot * 28;
            model.observe(&TraceRecord { start_pc: pc, signature: pc * 3, len });
        }
        let r = model.report();
        assert!(r.detection_loss_instrs <= r.recovery_loss_instrs);
        assert!(r.recovery_loss_instrs <= r.total_instrs);
        assert_eq!(r.mismatches, 0, "consistent signatures never mismatch");
    }
}

/// One-hot control-state encoding (§2.4) rejects every multi-bit pattern
/// and round-trips every valid state. Exhaustive over all byte values.
#[test]
fn one_hot_control_states() {
    use itr::core::ControlState;
    for bits in 0u8..=255 {
        match ControlState::from_one_hot(bits) {
            Some(state) => assert_eq!(state.one_hot(), bits),
            None => assert!(bits.count_ones() != 1 || bits > 0b1000),
        }
    }
}

/// Random straight-line programs (ALU + memory ops within a scratch
/// buffer, no branches) behave identically on the functional simulator
/// and the out-of-order pipeline.
#[test]
fn random_linear_programs_match_functional_execution() {
    use itr::isa::ProgramBuilder;
    use itr::sim::{FuncSim, Pipeline, PipelineConfig, RunExit};

    let mut rng = SplitMix64::new(0x11EA_4001);
    for case in 0..32 {
        let mut b = ProgramBuilder::new();
        b.label("main").expect("fresh");
        b.data_label("buf").expect("fresh");
        b.data_space(1024);
        b.load_addr(20, "buf");
        for _ in 0..rng.gen_range(5usize..60) {
            let rd = rng.gen_range(8u8..16);
            let rs = rng.gen_range(8u8..16);
            let rt = rng.gen_range(8u8..16);
            let imm = rng.gen_range(-100i32..100);
            let inst = match rng.gen_range(0u8..5) {
                0 => Instruction::rri(Opcode::Addi, rd, rs, imm),
                1 => Instruction::rrr(Opcode::Xor, rd, rs, rt),
                2 => Instruction::rrr(Opcode::Mul, rd, rs, rt),
                3 => Instruction::mem(Opcode::Sw, rs, 20, (imm.rem_euclid(256)) * 4),
                _ => Instruction::mem(Opcode::Lw, rd, 20, (imm.rem_euclid(256)) * 4),
            };
            b.push(inst);
        }
        b.push(Instruction::trap(itr::isa::trap::HALT));
        let program = b.build().expect("consistent");

        let mut func = FuncSim::new(&program);
        let (golden, _) = func.run_collect(10_000);

        let mut i = 0usize;
        let mut pipe = Pipeline::new(&program, PipelineConfig::with_itr());
        let exit = pipe.run_with(100_000, |r| {
            assert_eq!(*r, golden[i], "case {case}: commit {i}");
            i += 1;
            true
        });
        assert_eq!(exit, RunExit::Halted, "case {case}");
        assert_eq!(i, golden.len(), "case {case}");
    }
}

/// Random *branchy* programs — a bounded outer loop around blocks of
/// ALU/memory work with forward conditional skips — behave identically
/// on the functional simulator and the out-of-order pipeline. This
/// stresses misprediction repair, trace-formation rollback, and the ITR
/// commit interlock together.
#[test]
fn random_branchy_programs_match_functional_execution() {
    use itr::isa::ProgramBuilder;
    use itr::sim::{FuncSim, Pipeline, PipelineConfig, RunExit};

    let mut rng = SplitMix64::new(0xB4A_4C11);
    for case in 0..24 {
        let loop_count = rng.gen_range(2u32..12);
        let n_blocks = rng.gen_range(1usize..8);

        let mut b = ProgramBuilder::new();
        b.label("main").expect("fresh");
        b.data_label("scratch").expect("fresh");
        b.data_space(512);
        b.load_addr(20, "scratch");
        b.load_imm(21, loop_count as i64);
        b.label("loop_top").expect("fresh");
        for bi in 0..n_blocks {
            let skip = rng.gen_bool(0.5);
            if skip {
                // Data-dependent forward skip: taken iff the low bit of
                // r9 is set (r9 evolves with the block mix).
                b.push(Instruction::rri(Opcode::Andi, 8, 9, 1));
                b.branch_to(Opcode::Bgtz, 8, 0, &format!("after_{bi}"));
            }
            for _ in 0..rng.gen_range(1usize..6) {
                let rd = rng.gen_range(8u8..16);
                let rs = rng.gen_range(8u8..16);
                let imm = rng.gen_range(-50i32..50);
                let inst = match rng.gen_range(0u8..5) {
                    0 => Instruction::rri(Opcode::Addi, rd, rs, imm),
                    1 => Instruction::rrr(Opcode::Xor, rd, rs, 9),
                    2 => Instruction::rrr(Opcode::Add, 9, rd, rs),
                    3 => Instruction::mem(Opcode::Sw, rs, 20, (imm.rem_euclid(128)) * 4),
                    _ => Instruction::mem(Opcode::Lw, rd, 20, (imm.rem_euclid(128)) * 4),
                };
                b.push(inst);
            }
            if skip {
                b.label(&format!("after_{bi}")).expect("unique");
            }
        }
        b.push(Instruction::rri(Opcode::Addi, 21, 21, -1));
        b.branch_to(Opcode::Bgtz, 21, 0, "loop_top");
        b.push(Instruction::trap(itr::isa::trap::HALT));
        let program = b.build().expect("consistent");

        let mut func = FuncSim::new(&program);
        let (golden, _) = func.run_collect(100_000);

        let mut i = 0usize;
        let mut pipe = Pipeline::new(&program, PipelineConfig::with_itr());
        let exit = pipe.run_with(2_000_000, |r| {
            assert_eq!(*r, golden[i], "case {case}: commit {i} diverged");
            i += 1;
            true
        });
        assert_eq!(exit, RunExit::Halted, "case {case}");
        assert_eq!(i, golden.len(), "case {case}");
        assert_eq!(pipe.itr().unwrap().stats().mismatches, 0, "case {case}");
    }
}

/// Architectural correctness is invariant across the microarchitecture
/// configuration space: widths, window sizes, cache geometries,
/// predictor sizes and ITR options change timing only.
#[test]
fn pipeline_configs_never_change_architecture() {
    use itr::core::{Associativity, ItrCacheConfig, ItrConfig};
    use itr::isa::asm::assemble;
    use itr::sim::{CacheGeometry, Pipeline, PipelineConfig, RunExit};
    use itr::workloads::kernels;

    let kernel = kernels::CRC32;
    let program = assemble(kernel.source).expect("assembles");
    let mut rng = SplitMix64::new(0xC0F1_6AAA);
    for case in 0..24 {
        let width = 1u32 << rng.gen_range(0u32..3); // 1, 2, 4 wide
        let cfg = PipelineConfig {
            width,
            issue_width: width,
            rob_entries: 1 << rng.gen_range(4u32..8), // 16..128 entries
            iq_entries: rng.gen_range(8u32..48),
            gshare_bits: rng.gen_range(4u32..14),
            icache: CacheGeometry {
                size_bytes: (1 << rng.gen_range(1u32..5)) * 1024,
                line_bytes: 64,
                ways: 1,
            },
            itr: Some(ItrConfig {
                // 8..1024 signatures
                cache: ItrCacheConfig::new(1 << rng.gen_range(3u32..11), Associativity::Ways(2)),
                rob_forwarding: rng.gen_bool(0.5),
                cache_read_latency: rng.gen_range(0u32..6),
                ..ItrConfig::paper_default()
            }),
            ..PipelineConfig::default()
        };
        let mut pipe = Pipeline::new(&program, cfg);
        let exit = pipe.run(50_000_000);
        assert_eq!(exit, RunExit::Halted, "case {case}");
        assert_eq!(pipe.output(), kernel.expected_output, "case {case}");
        assert_eq!(pipe.itr().unwrap().stats().mismatches, 0, "case {case}");
    }
}
