//! `itr-cli` — drive the ITR simulator from the command line.
//!
//! ```text
//! itr-cli run <file.s> [--functional] [--no-itr] [--max-cycles N]
//! itr-cli disasm <file.s>
//! itr-cli trace <file.s> [--instrs N]
//! itr-cli inject <file.s> --nth N --bit B [--no-itr]
//! itr-cli kernels [name]
//! itr-cli mimic <bench> [--instrs N] [--seed S]
//! ```

use itr::core::{CoverageModel, ItrCacheConfig};
use itr::isa::asm::assemble;
use itr::isa::{disasm, Program};
use itr::sim::{DecodeFault, FuncSim, Pipeline, PipelineConfig, TraceStream};
use itr::workloads::{generate_mimic_sized, kernels, profiles};
use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("disasm") => cmd_disasm(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("inject") => cmd_inject(&args[1..]),
        Some("kernels") => cmd_kernels(&args[1..]),
        Some("mimic") => cmd_mimic(&args[1..]),
        _ => {
            eprintln!(
                "usage: itr-cli <run|disasm|trace|inject|kernels|mimic> ...\n\
                 \n\
                 run <file.s> [--functional] [--no-itr] [--max-cycles N]\n\
                 disasm <file.s>\n\
                 trace <file.s> [--instrs N]\n\
                 inject <file.s> --nth N --bit B [--no-itr]\n\
                 kernels [name]\n\
                 mimic <bench> [--instrs N] [--seed S]"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn opt(args: &[String], name: &str) -> Option<u64> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).and_then(|v| v.parse().ok())
}

fn load(path: &str) -> Result<Program, Box<dyn std::error::Error>> {
    // Built-in kernel names are accepted anywhere a file is.
    if let Some(k) = kernels::by_name(path) {
        return Ok(assemble(k.source)?);
    }
    let source = std::fs::read_to_string(path)?;
    Ok(assemble(&source)?)
}

fn cmd_run(args: &[String]) -> CliResult {
    let path = args.first().ok_or("missing program file")?;
    let program = load(path)?;
    if flag(args, "--functional") {
        let mut sim = FuncSim::new(&program);
        let reason = sim.run(opt(args, "--max-instrs").unwrap_or(100_000_000));
        println!("{}", sim.output());
        println!("-- {} instructions, stop: {reason:?}", sim.instr_count());
        return Ok(());
    }
    let cfg =
        if flag(args, "--no-itr") { PipelineConfig::default() } else { PipelineConfig::with_itr() };
    let mut pipe = Pipeline::new(&program, cfg);
    let exit = pipe.run(opt(args, "--max-cycles").unwrap_or(100_000_000));
    println!("{}", pipe.output());
    let s = pipe.stats();
    println!(
        "-- {} instructions in {} cycles (IPC {:.2}), exit: {exit:?}",
        s.committed,
        s.cycles,
        s.ipc()
    );
    if let Some(unit) = pipe.itr() {
        let i = unit.stats();
        println!(
            "-- ITR: {} traces, {} cache hits, {} misses, {} mismatches",
            i.traces_committed,
            unit.cache().stats().hits,
            unit.cache().stats().misses,
            i.mismatches
        );
    }
    Ok(())
}

fn cmd_disasm(args: &[String]) -> CliResult {
    let path = args.first().ok_or("missing program file")?;
    let program = load(path)?;
    let mut labels: BTreeMap<u64, Vec<&str>> = BTreeMap::new();
    for (name, addr) in program.symbols() {
        labels.entry(addr).or_default().push(name);
    }
    for (i, &word) in program.text().iter().enumerate() {
        let addr = program.text_base() + i as u64 * 4;
        if let Some(names) = labels.get(&addr) {
            for n in names {
                println!("{n}:");
            }
        }
        match itr::isa::decode(word) {
            Ok(inst) => println!("  {addr:#010x}: {:08x}  {}", word, disasm::disassemble(&inst)),
            Err(_) => println!("  {addr:#010x}: {word:08x}  <undefined>"),
        }
    }
    Ok(())
}

fn cmd_trace(args: &[String]) -> CliResult {
    let path = args.first().ok_or("missing program file")?;
    let program = load(path)?;
    let instrs = opt(args, "--instrs").unwrap_or(1_000_000);
    // BTreeMap: ties in the hotness sort below break by PC, not by
    // the per-process hash seed.
    let mut by_trace: BTreeMap<u64, u64> = BTreeMap::new();
    let mut total = 0u64;
    let mut coverage = CoverageModel::new(ItrCacheConfig::paper_default());
    for t in TraceStream::new(&program, instrs) {
        *by_trace.entry(t.start_pc).or_default() += t.len as u64;
        total += t.len as u64;
        coverage.observe(&t);
    }
    println!("dynamic instructions : {total}");
    println!("static traces        : {}", by_trace.len());
    let mut top: Vec<(u64, u64)> = by_trace.into_iter().collect();
    top.sort_unstable_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!("hottest traces:");
    for (pc, n) in top.iter().take(10) {
        println!("  {pc:#010x}: {n} instrs ({:.1}%)", *n as f64 * 100.0 / total as f64);
    }
    let r = coverage.report();
    println!(
        "ITR coverage loss (1024x2-way): detection {:.2}%, recovery {:.2}%",
        r.detection_loss_pct(),
        r.recovery_loss_pct()
    );
    Ok(())
}

fn cmd_inject(args: &[String]) -> CliResult {
    let path = args.first().ok_or("missing program file")?;
    let program = load(path)?;
    let fault = DecodeFault {
        nth_decode: opt(args, "--nth").ok_or("--nth required")?,
        bit: opt(args, "--bit").ok_or("--bit required")? as u32,
    };
    println!(
        "injecting bit {} ({}) of decode #{}",
        fault.bit,
        itr::isa::DecodeSignals::field_of_bit(fault.bit),
        fault.nth_decode
    );
    let base =
        if flag(args, "--no-itr") { PipelineConfig::default() } else { PipelineConfig::with_itr() };
    let cfg = PipelineConfig { faults: vec![fault], ..base };
    let mut pipe = Pipeline::new(&program, cfg);
    let exit = pipe.run(opt(args, "--max-cycles").unwrap_or(10_000_000));
    println!("output: {:?}", pipe.output());
    println!("exit  : {exit:?}");
    if let Some(unit) = pipe.itr() {
        let s = unit.stats();
        println!(
            "ITR   : {} mismatches, {} retries, {} recoveries, {} machine checks",
            s.mismatches, s.retries, s.recoveries, s.machine_checks
        );
    }
    for (cycle, e) in pipe.itr_events() {
        println!("  cycle {cycle:>7}: {e:?}");
    }
    if !pipe.spc_violations().is_empty() {
        println!("spc violations: {}", pipe.spc_violations().len());
    }
    Ok(())
}

fn cmd_kernels(args: &[String]) -> CliResult {
    match args.first() {
        None => {
            for k in kernels::all() {
                println!("{:<14} expected output: {}", k.name, k.expected_output);
            }
            Ok(())
        }
        Some(name) => {
            let k = kernels::by_name(name).ok_or("unknown kernel")?;
            println!("{}", k.source);
            Ok(())
        }
    }
}

fn cmd_mimic(args: &[String]) -> CliResult {
    let name = args.first().ok_or("missing benchmark name")?;
    let profile = profiles::by_name(name).ok_or_else(|| {
        format!(
            "unknown benchmark; known: {}",
            profiles::all().iter().map(|p| p.name).collect::<Vec<_>>().join(", ")
        )
    })?;
    let instrs = opt(args, "--instrs").unwrap_or(200_000);
    let seed = opt(args, "--seed").unwrap_or(42);
    let program = generate_mimic_sized(profile, seed, instrs);
    println!(
        "generated `{}` mimic: {} static instructions, {} data bytes",
        profile.name,
        program.len(),
        program.data().len()
    );
    let mut pipe = Pipeline::new(&program, PipelineConfig::with_itr());
    let exit = pipe.run(instrs * 20);
    let s = pipe.stats();
    println!(
        "ran {} instructions in {} cycles (IPC {:.2}), exit {exit:?}",
        s.committed,
        s.cycles,
        s.ipc()
    );
    let unit = pipe.itr().expect("itr on");
    println!(
        "ITR: {} traces, hit rate {:.1}%, recovery-coverage loss {:.2}%",
        unit.stats().traces_committed,
        unit.cache().stats().hits as f64 * 100.0 / unit.cache().stats().reads.max(1) as f64,
        unit.stats().recovery_loss_instrs as f64 * 100.0
            / unit.stats().instrs_committed.max(1) as f64
    );
    Ok(())
}
