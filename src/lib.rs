//! # itr — Inherent Time Redundancy
//!
//! A full Rust reproduction of *"Inherent Time Redundancy (ITR): Using
//! Program Repetition for Low-Overhead Fault Tolerance"* (Reddy &
//! Rotenberg, DSN 2007): detect transient faults in a processor's fetch
//! and decode units by recording and confirming decode-signal signatures
//! of repeating instruction traces in a small, PC-indexed ITR cache.
//!
//! This façade crate re-exports the component crates:
//!
//! * [`isa`] — the `rISA` instruction set, Table-2 decode signals,
//!   assembler and program builder,
//! * [`core`] — the paper's contribution: signatures, ITR cache, ITR ROB,
//!   recovery controller, coverage models, `spc`/`wdog` checks,
//! * [`sim`] — the substrate: functional simulator and the cycle-level
//!   out-of-order pipeline with the ITR unit embedded,
//! * [`workloads`] — assembly kernels and SPEC2K-mimic workloads,
//! * [`faults`] — single-event-upset campaigns, the Figure-8 outcome
//!   taxonomy, and the extended fault-model library (multi-bit upsets,
//!   stuck-ats, intermittents, retry-window bursts),
//! * [`env`] — hostile-environment scenarios: multi-program
//!   interleaving through one shared ITR cache under configurable
//!   context-switch policies,
//! * [`fuzz`] — coverage-guided differential fuzzing of the simulator
//!   and the ITR detection stack, with four replayable oracles,
//! * [`analyze`] — static CFG recovery, trace-universe enumeration,
//!   signature-alias and cache-conflict analysis, with a dynamic
//!   cross-validation oracle,
//! * [`power`] — CACTI-lite energy and the S/390 G5 area comparison,
//! * [`stats`] — the unified telemetry layer: typed counters, per-stage
//!   histograms, the post-mortem event ring, the `itr-stats/v1` JSON
//!   export, and the deterministic [`stats::SplitMix64`] PRNG.
//!
//! # Quick start
//!
//! ```
//! use itr::isa::asm::assemble;
//! use itr::sim::{Pipeline, PipelineConfig, RunExit};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble(
//!     r#"
//!     main:
//!         li r8, 10
//!         li r9, 0
//!     top:
//!         add r9, r9, r8
//!         addi r8, r8, -1
//!         bgtz r8, top
//!         move r4, r9
//!         trap 1
//!         halt
//!     "#,
//! )?;
//! let mut cpu = Pipeline::new(&program, PipelineConfig::with_itr());
//! assert_eq!(cpu.run(100_000), RunExit::Halted);
//! assert_eq!(cpu.output(), "55");
//! let itr = cpu.itr().expect("ITR enabled");
//! assert_eq!(itr.stats().mismatches, 0, "fault-free runs never mismatch");
//! # Ok(())
//! # }
//! ```

// Tests opt back out of the workspace `unwrap_used` deny: panicking on
// a broken expectation is exactly what a test should do.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub use itr_analyze as analyze;
pub use itr_core as core;
pub use itr_env as env;
pub use itr_faults as faults;
pub use itr_fuzz as fuzz;
pub use itr_isa as isa;
pub use itr_power as power;
pub use itr_sim as sim;
pub use itr_stats as stats;
pub use itr_workloads as workloads;
